"""Exporters: one registry, three machine/human-readable surfaces.

* :func:`to_jsonl` — newline-delimited JSON events (metrics then spans),
  the archival format the benches embed and ``--trace-out`` reuses;
* :func:`to_prometheus` — Prometheus text exposition format
  (``name{labels} value`` with ``# HELP``/``# TYPE`` headers), so a
  production deployment can scrape any experiment verbatim;
* :func:`to_table` — aligned human-readable table for terminals.

Everything here consumes only the snapshot model of
:mod:`repro.obs.registry` (plus duck-typed trace records for
:func:`traces_to_jsonl`), keeping the package dependency-free.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from .registry import HistogramState, MetricsRegistry

__all__ = [
    "to_jsonl",
    "to_prometheus",
    "to_table",
    "snapshot_dict",
    "traces_to_jsonl",
    "EXPORT_FORMATS",
    "export",
    "ParsedSample",
    "PromParseError",
    "parse_prometheus_text",
]

#: Histogram quantiles surfaced by :func:`to_table` / :func:`snapshot_dict`.
_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def _prom_name(name: str) -> str:
    if _NAME_OK.match(name):
        return name
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name) or "_"


def _prom_label_name(name: str) -> str:
    if _LABEL_OK.match(name):
        return name
    return re.sub(r"[^a-zA-Z0-9_]", "_", name) or "_"


def _prom_label_value(value: str) -> str:
    # Exposition-format label escaping: backslash FIRST (or the escapes
    # introduced for quote/newline would themselves be re-escaped), then
    # double-quote and newline.  The exact inverse lives in the strict
    # parser below and the conformance tests round-trip both directions.
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_help(text: str) -> str:
    # HELP lines escape only backslash and newline (not quotes) — a raw
    # newline would start a bogus exposition line and break scrapes.
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _prom_labels(labels: Mapping[str, str], extra: Mapping[str, str] | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(
        f'{_prom_label_name(k)}="{_prom_label_value(str(v))}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _prom_float(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format.

    Histograms follow the standard cumulative-bucket convention
    (``_bucket{le=...}`` / ``_sum`` / ``_count``).  Ends with a trailing
    newline, as the format requires.
    """
    lines: list[str] = []
    for instrument in registry.instruments():
        samples = instrument.samples()
        if not samples:
            continue
        name = _prom_name(instrument.name)
        if instrument.help:
            lines.append(f"# HELP {name} {_prom_help(instrument.help)}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        for sample in samples:
            if sample.histogram is not None:
                lines.extend(_prom_histogram(name, sample.labels, sample.histogram))
            else:
                lines.append(
                    f"{name}{_prom_labels(sample.labels)} {_prom_float(sample.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def _prom_histogram(
    name: str, labels: Mapping[str, str], state: HistogramState
) -> list[str]:
    lines = []
    cumulative = 0
    for bound, count in zip(state.bounds, state.counts):
        cumulative += count
        le = {"le": _prom_float(bound)}
        lines.append(f"{name}_bucket{_prom_labels(labels, le)} {cumulative}")
    cumulative += state.counts[-1]
    lines.append(f'{name}_bucket{_prom_labels(labels, {"le": "+Inf"})} {cumulative}')
    lines.append(f"{name}_sum{_prom_labels(labels)} {_prom_float(state.total)}")
    lines.append(f"{name}_count{_prom_labels(labels)} {state.count}")
    return lines


def snapshot_dict(registry: MetricsRegistry) -> dict[str, Any]:
    """JSON-able dict of the whole registry (the benches' ``metrics`` block).

    Shape: ``{"metrics": [...], "spans": [...]}`` with one entry per
    sample — counters/gauges carry ``value``, histograms carry
    ``count``/``sum`` plus the non-empty buckets.
    """
    metrics: list[dict[str, Any]] = []
    for sample in registry.snapshot():
        entry: dict[str, Any] = {
            "name": sample.name,
            "type": sample.kind,
            "labels": dict(sample.labels),
        }
        if sample.histogram is not None:
            state = sample.histogram
            entry["count"] = state.count
            entry["sum"] = state.total
            buckets: dict[str, int] = {}
            for bound, count in zip(state.bounds, state.counts):
                if count:
                    buckets[_prom_float(bound)] = count
            if state.counts[-1]:
                buckets["+Inf"] = state.counts[-1]
            entry["buckets"] = buckets
            if state.count:
                entry["quantiles"] = {
                    label: state.quantile(q) for label, q in _QUANTILES
                }
        else:
            entry["value"] = sample.value
        metrics.append(entry)
    spans = [
        {
            "name": record.name,
            "seconds": record.seconds,
            "depth": record.depth,
            "parent": record.parent,
            "status": record.status,
            **({"trace_id": record.trace_id} if record.trace_id else {}),
            **({"span_id": record.span_id} if record.span_id else {}),
            **(
                {"parent_span_id": record.parent_span_id}
                if record.parent_span_id
                else {}
            ),
            **({"pid": record.pid} if record.pid else {}),
            **({"labels": record.labels} if record.labels else {}),
        }
        for record in registry.spans
    ]
    return {"metrics": metrics, "spans": spans}


def to_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per line: every metric sample, then every span."""
    payload = snapshot_dict(registry)
    lines = [json.dumps(entry, sort_keys=True) for entry in payload["metrics"]]
    lines.extend(
        json.dumps({"type": "span", **entry}, sort_keys=True)
        for entry in payload["spans"]
    )
    return "\n".join(lines) + "\n" if lines else ""


def to_table(registry: MetricsRegistry) -> str:
    """Aligned human-readable rendering of the registry."""
    rows: list[tuple[str, str, str, str]] = []
    for sample in registry.snapshot():
        labels = ",".join(f"{k}={v}" for k, v in sorted(sample.labels.items()))
        if sample.histogram is not None:
            state = sample.histogram
            mean = state.total / state.count if state.count else 0.0
            value = f"n={state.count} sum={state.total:.6g} mean={mean:.6g}"
            if state.count:
                value += " " + " ".join(
                    f"{label}={state.quantile(q):.4g}" for label, q in _QUANTILES
                )
        else:
            value = _prom_float(sample.value)
        rows.append((sample.name, sample.kind, labels, value))
    for record in registry.spans:
        indent = "  " * record.depth
        rows.append(
            (
                f"{indent}{record.name}",
                "span",
                record.status,
                f"{record.seconds:.6f}s",
            )
        )
    if not rows:
        return "(no metrics recorded)\n"
    headers = ("metric", "type", "labels", "value")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"


def traces_to_jsonl(traces: Iterable[Any]) -> str:
    """Per-query :class:`QueryTrace` records as JSON-lines.

    Duck-typed: any object with a plain attribute ``__dict__`` works; the
    derived ``distance_evaluations`` total is included when present so
    each line is self-describing.
    """
    lines = []
    for trace in traces:
        entry: dict[str, Any] = {"type": "query_trace", **vars(trace)}
        total = getattr(trace, "distance_evaluations", None)
        if total is not None:
            entry["distance_evaluations"] = int(total)
        lines.append(json.dumps(entry, sort_keys=True))
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Strict exposition-format parser (conformance checking / scrape smoke)
# ----------------------------------------------------------------------

#: Metric kinds the exposition format admits in ``# TYPE`` lines.
_PROM_KINDS = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})


class PromParseError(ValueError):
    """Raised by :func:`parse_prometheus_text` with a 1-based line number."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


@dataclass(frozen=True)
class ParsedSample:
    """One sample line of a Prometheus text exposition."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float
    line_no: int

    @property
    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)


def _parse_labels(text: str, line_no: int) -> tuple[tuple[tuple[str, str], ...], str]:
    """Parse a ``{...}`` label block character-by-character.

    Returns the sorted label pairs and the remainder of the line.  Unlike
    a regex, this handles escaped quotes/backslashes/newlines inside
    label values exactly per the exposition format.
    """
    assert text[0] == "{"
    i = 1
    pairs: list[tuple[str, str]] = []
    while True:
        if i >= len(text):
            raise PromParseError(line_no, "unterminated label block")
        if text[i] == "}":
            i += 1
            break
        name_match = re.match(r"[a-zA-Z_][a-zA-Z0-9_]*", text[i:])
        if name_match is None:
            raise PromParseError(line_no, f"bad label name at {text[i:]!r}")
        name = name_match.group(0)
        i += len(name)
        if text[i : i + 2] != '="':
            raise PromParseError(line_no, f"label {name!r} must be followed by =\"")
        i += 2
        out: list[str] = []
        while True:
            if i >= len(text):
                raise PromParseError(line_no, f"unterminated value for label {name!r}")
            ch = text[i]
            if ch == '"':
                i += 1
                break
            if ch == "\\":
                if i + 1 >= len(text):
                    raise PromParseError(line_no, "dangling backslash in label value")
                esc = text[i + 1]
                if esc == "\\":
                    out.append("\\")
                elif esc == '"':
                    out.append('"')
                elif esc == "n":
                    out.append("\n")
                else:
                    raise PromParseError(
                        line_no, f"invalid escape \\{esc} in label value"
                    )
                i += 2
            else:
                out.append(ch)
                i += 1
        pairs.append((name, "".join(out)))
        if i < len(text) and text[i] == ",":
            i += 1
    return tuple(sorted(pairs)), text[i:]


def _parse_value(token: str, line_no: int) -> float:
    if token in ("+Inf", "Inf"):
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token in ("NaN", "nan"):
        return math.nan
    try:
        return float(token)
    except ValueError:
        raise PromParseError(line_no, f"bad sample value {token!r}") from None


def parse_prometheus_text(text: str) -> list[ParsedSample]:
    """Strictly parse a Prometheus text exposition into samples.

    A deliberately unforgiving conformance checker used by the tests and
    the CI scrape smoke: it validates metric/label name charsets,
    ``# HELP`` / ``# TYPE`` comment structure, label-value escaping
    (including escaped quotes a naive regex would split on), that every
    sample's family carries a prior ``# TYPE`` declaration (histogram
    samples may use the ``_bucket``/``_sum``/``_count`` suffixes), and
    the required trailing newline.  Raises :class:`PromParseError` with
    the offending line number; returns the samples in document order.
    """
    if text == "":
        return []
    if not text.endswith("\n"):
        raise PromParseError(text.count("\n") + 1, "exposition must end with a newline")
    samples: list[ParsedSample] = []
    types: dict[str, str] = {}
    for line_no, line in enumerate(text.split("\n")[:-1], start=1):
        if line == "":
            continue  # blank separator lines are allowed
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in ("HELP", "TYPE"):
                raise PromParseError(line_no, f"malformed comment line {line!r}")
            if not _NAME_OK.match(parts[2]):
                raise PromParseError(line_no, f"bad metric name {parts[2]!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _PROM_KINDS:
                    raise PromParseError(line_no, f"bad TYPE line {line!r}")
                if parts[2] in types:
                    raise PromParseError(line_no, f"duplicate TYPE for {parts[2]!r}")
                types[parts[2]] = parts[3]
            continue
        name_match = re.match(r"[a-zA-Z_:][a-zA-Z0-9_:]*", line)
        if name_match is None:
            raise PromParseError(line_no, f"bad sample line {line!r}")
        name = name_match.group(0)
        rest = line[len(name) :]
        labels: tuple[tuple[str, str], ...] = ()
        if rest.startswith("{"):
            labels, rest = _parse_labels(rest, line_no)
        if not rest.startswith(" "):
            raise PromParseError(line_no, f"missing space before value in {line!r}")
        tokens = rest[1:].split(" ")
        if len(tokens) != 1:
            # We never emit timestamps; reject them so the suite notices
            # if an exporter starts producing multi-token lines.
            raise PromParseError(line_no, f"expected exactly one value in {line!r}")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) in ("histogram", "summary"):
                family = base
                break
        if family not in types:
            raise PromParseError(line_no, f"sample {name!r} has no # TYPE declaration")
        samples.append(ParsedSample(name, labels, _parse_value(tokens[0], line_no), line_no))
    return samples


#: Exporters by CLI name.
EXPORT_FORMATS = {
    "table": to_table,
    "jsonl": to_jsonl,
    "prom": to_prometheus,
}


def export(registry: MetricsRegistry, fmt: str) -> str:
    """Render *registry* in one of :data:`EXPORT_FORMATS`."""
    try:
        renderer = EXPORT_FORMATS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown metrics format {fmt!r}; choose from {sorted(EXPORT_FORMATS)}"
        ) from None
    return renderer(registry)
