"""Request-scoped trace identity, propagated across executor boundaries.

A :class:`TraceContext` gives one logical request — a query batch, a
single query, an index build — a stable ``trace_id`` that every span,
log record, and worker-process slice produced on its behalf carries, so
a timeline or a JSON-lines log can be filtered down to exactly one
request even when its work fanned out over threads and processes.

Propagation uses the three mechanisms the engine's executors need:

* **same thread** — a :mod:`contextvars` variable, exactly like the
  span stack in :mod:`repro.obs.spans`;
* **thread pool** — :func:`contextvars.copy_context` snapshots taken at
  submit time (``ThreadPoolExecutor`` workers do *not* inherit the
  submitter's context on their own);
* **process pool** — the context is a frozen dataclass of strings, so
  the engine pickles it into the chunk payload and the worker activates
  it before running; worker spans then carry the parent's ``trace_id``.

Identifiers follow the W3C trace-context shape (128-bit ``trace_id``,
64-bit ``span_id``, lowercase hex) but are generated with plain
:mod:`uuid` — no wire protocol is implied, only stable correlation keys.

Layering: imports nothing outside the standard library, so every layer
(including :mod:`repro.mam`) may use it.
"""

from __future__ import annotations

import contextvars
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "TraceContext",
    "current_trace_context",
    "activate_trace_context",
    "trace_scope",
    "new_span_id",
]


def _new_trace_id() -> str:
    return uuid.uuid4().hex  # 128 bits, 32 hex chars


def new_span_id() -> str:
    """A fresh 64-bit span identifier (16 lowercase hex chars)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """Identity of one logical request.

    Attributes
    ----------
    trace_id:
        Shared by everything done on behalf of one request; 32 hex chars.
    span_id:
        The identifier of the span that owns this context — child spans
        (and worker-side spans receiving the context over pickle) use it
        as their parent; 16 hex chars.
    parent_span_id:
        The owning span's own parent, empty at the root.
    """

    trace_id: str
    span_id: str
    parent_span_id: str = ""

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context (new trace_id, new root span_id)."""
        return cls(trace_id=_new_trace_id(), span_id=new_span_id())

    def child(self) -> "TraceContext":
        """A child context: same trace, new span_id, parented here."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_span_id=self.span_id,
        )


_ACTIVE_CONTEXT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_obs_trace_context", default=None
)


def current_trace_context() -> TraceContext | None:
    """The active :class:`TraceContext` of this thread/context, if any."""
    return _ACTIVE_CONTEXT.get()


@contextmanager
def activate_trace_context(context: TraceContext | None) -> Iterator[TraceContext | None]:
    """Make *context* the active one for the duration of the block.

    ``None`` deactivates (useful in tests); the previous context is
    restored on exit.  Use this form when the context arrived from
    elsewhere — a pickled chunk payload, a stored request header.
    """
    token = _ACTIVE_CONTEXT.set(context)
    try:
        yield context
    finally:
        _ACTIVE_CONTEXT.reset(token)


@contextmanager
def trace_scope() -> Iterator[TraceContext]:
    """Yield the active context, minting a fresh root when there is none.

    The idempotent entry-point guard: every boundary that starts a
    request (``BuiltIndex`` query methods, ``QueryBatch.run``, a model
    build) wraps itself in ``trace_scope()``; nested boundaries reuse the
    outer request's identity instead of allocating a new one, so one CLI
    query produces exactly one ``trace_id`` end to end.
    """
    existing = _ACTIVE_CONTEXT.get()
    if existing is not None:
        yield existing
        return
    context = TraceContext.new()
    token = _ACTIVE_CONTEXT.set(context)
    try:
        yield context
    finally:
        _ACTIVE_CONTEXT.reset(token)
