"""Unified observability: instruments, spans, and exporters.

The paper argues in *costs* — distance computations, filter hit rates,
I/O — and every layer of this library measures some of them.  This
package is the common model those measurements flow into:

* :mod:`repro.obs.registry` — labeled :class:`Counter` / :class:`Gauge`
  / log-bucketed :class:`Histogram` instruments in a thread-safe
  :class:`MetricsRegistry`, with a process-wide active registry that
  defaults to a no-op :class:`NullRegistry` (observability off = near
  zero overhead, bit-identical distance counts);
* :mod:`repro.obs.spans` — nestable monotonic-clocked :func:`span`
  blocks propagated via contextvars;
* :mod:`repro.obs.instruments` — duck-typed adapters funneling the
  existing sinks (``CountingDistance``, ``QueryTrace``, ``CacheStats``,
  the cholesky cache, ``describe_index``) into the registry;
* :mod:`repro.obs.export` — JSON-lines, Prometheus text format, and
  aligned-table exporters, plus the benches' ``metrics`` block;
* :mod:`repro.obs.events` — per-query traversal events (node entries,
  lower-bound checks with actual bound values, prunes, candidate
  verifications) in a bounded, optionally sampled buffer that is off by
  default and keeps exact aggregates even when records are dropped;
* :mod:`repro.obs.explain` — assembles the events of one query into an
  :class:`ExplainPlan` cost tree whose charged totals equal the distance
  counter exactly, with text/JSON rendering and the Table 2 cost audit;
* :mod:`repro.obs.context` — request-scoped :class:`TraceContext`
  (trace_id/span_id) carried by every span and log record, propagated
  across thread pools (``contextvars.copy_context``) and process pools
  (pickled into chunk payloads) by the batch engine;
* :mod:`repro.obs.prof` — a zero-dependency sampling profiler, off by
  default, attributing wall-clock samples to the open span stack and
  exporting collapsed-stack text and speedscope JSON;
* :mod:`repro.obs.logging` — a JSON-lines structured logger (one record
  per query/build/plan/error event, trace_id-correlated) behind the same
  null-by-default activation pattern as the registry.

Layering rule: this package imports **nothing** from the rest of the
library (enforced by a ruff ``flake8-tidy-imports`` ban for
:mod:`repro.mam` / :mod:`repro.models`), so any layer may import it.
Activate collection with::

    from repro.obs import MetricsRegistry, use_registry, to_table
    with use_registry(MetricsRegistry()) as reg:
        ...  # build indexes, run query batches
        print(to_table(reg))
"""

from __future__ import annotations

from .context import (
    TraceContext,
    activate_trace_context,
    current_trace_context,
    new_span_id,
    trace_scope,
)
from .events import (
    EVENT_KINDS,
    ROOT,
    EventBuffer,
    NodeStats,
    TraversalEvent,
    collect_events,
    current_buffer,
    emit_candidate_verify,
    emit_charge,
    emit_lb_check,
    emit_node_enter,
    emit_prune,
    emit_result_add,
    events_enabled,
)
from .explain import (
    CostAudit,
    ExplainNode,
    ExplainPlan,
    assemble_plan,
    render_text,
)
from .export import (
    EXPORT_FORMATS,
    ParsedSample,
    PromParseError,
    export,
    parse_prometheus_text,
    snapshot_dict,
    to_jsonl,
    to_prometheus,
    to_table,
    traces_to_jsonl,
)
from .instruments import (
    DISTANCE_EVALUATIONS,
    QUERY_ERRORS,
    TRANSFORMS,
    DistanceInstrument,
    record_batch_summary,
    record_cache_stats,
    record_cholesky_cache,
    record_distance_stats,
    record_index_description,
    record_query_error,
    record_trace,
    record_traces,
)
from .live import (
    TELEMETRY_SCRAPES,
    WINDOW_EVALUATIONS_PER_SECOND,
    WINDOW_QUERIES_PER_SECOND,
    TelemetryServer,
    WindowedRate,
    observe_query_progress,
    parse_serve_spec,
    sync_rate_gauges,
)
from .memory import (
    KERNEL_BLOCK_ROWS,
    PEAK_RSS,
    RssSampler,
    current_rss_bytes,
    peak_rss_bytes,
    peak_rss_source,
    record_memory,
)
from .logging import (
    NULL_LOGGER,
    JsonLinesLogger,
    NullLogger,
    get_logger,
    log_event,
    set_logger,
    use_logger,
)
from .prof import (
    PROFILE_SAMPLES,
    SamplingProfiler,
    profile_to,
)
from .registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    HistogramState,
    MetricSample,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from .spans import SpanRecord, current_span, open_span_for_thread, span
from .timeline import (
    chrome_trace,
    plan_trace_events,
    span_trace_events,
    write_timeline,
)

__all__ = [
    "EVENT_KINDS",
    "ROOT",
    "EventBuffer",
    "NodeStats",
    "TraversalEvent",
    "collect_events",
    "current_buffer",
    "events_enabled",
    "emit_node_enter",
    "emit_lb_check",
    "emit_prune",
    "emit_candidate_verify",
    "emit_result_add",
    "emit_charge",
    "CostAudit",
    "ExplainNode",
    "ExplainPlan",
    "assemble_plan",
    "render_text",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramState",
    "MetricSample",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "SpanRecord",
    "span",
    "current_span",
    "open_span_for_thread",
    "TraceContext",
    "current_trace_context",
    "activate_trace_context",
    "trace_scope",
    "new_span_id",
    "JsonLinesLogger",
    "NullLogger",
    "NULL_LOGGER",
    "get_logger",
    "set_logger",
    "use_logger",
    "log_event",
    "PROFILE_SAMPLES",
    "SamplingProfiler",
    "profile_to",
    "DISTANCE_EVALUATIONS",
    "QUERY_ERRORS",
    "TRANSFORMS",
    "PEAK_RSS",
    "KERNEL_BLOCK_ROWS",
    "peak_rss_bytes",
    "peak_rss_source",
    "current_rss_bytes",
    "record_memory",
    "RssSampler",
    "TELEMETRY_SCRAPES",
    "WINDOW_QUERIES_PER_SECOND",
    "WINDOW_EVALUATIONS_PER_SECOND",
    "TelemetryServer",
    "WindowedRate",
    "observe_query_progress",
    "parse_serve_spec",
    "sync_rate_gauges",
    "chrome_trace",
    "span_trace_events",
    "plan_trace_events",
    "write_timeline",
    "ParsedSample",
    "PromParseError",
    "parse_prometheus_text",
    "DistanceInstrument",
    "record_distance_stats",
    "record_query_error",
    "record_trace",
    "record_traces",
    "record_batch_summary",
    "record_cache_stats",
    "record_cholesky_cache",
    "record_index_description",
    "to_jsonl",
    "to_prometheus",
    "to_table",
    "snapshot_dict",
    "traces_to_jsonl",
    "EXPORT_FORMATS",
    "export",
]
