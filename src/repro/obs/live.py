"""Live telemetry: an embedded scrape endpoint and rolling-rate gauges.

Everything else in :mod:`repro.obs` is *post-hoc* — metrics are exported
after a batch finishes.  This module is the continuous half promised by
the roadmap's query-service item:

* :class:`TelemetryServer` — a zero-dependency HTTP server (stdlib
  :class:`~http.server.ThreadingHTTPServer` on a daemon thread) exposing
  the live :class:`~repro.obs.registry.MetricsRegistry` at
  ``GET /metrics`` (Prometheus text exposition), ``GET /healthz`` and
  ``GET /snapshot.json``.  Port 0 auto-assigns a free port, so tests and
  parallel benches never collide.  Every render happens under the
  registry's instrument locks (the same snapshot path the exporters
  use), so a scrape taken mid-batch is internally consistent.
* :class:`WindowedRate` — a bucketed rolling-window rate estimator, and
  a per-registry rate board behind :func:`observe_query_progress` that
  the engine feeds as query chunks complete.  :func:`sync_rate_gauges`
  (called automatically on every scrape) turns the windows into
  ``repro_window_queries_per_second`` / ``repro_window_distance_
  evaluations_per_second`` gauges, so a scrape mid-batch shows progress
  instead of a frozen pre-batch snapshot.

Non-interference: with the :data:`~repro.obs.registry.NULL_REGISTRY`
active, :func:`observe_query_progress` returns after one attribute
check, no rate board is allocated, and a :class:`TelemetryServer` (if
someone starts one anyway) serves an empty exposition without touching
any query state — answers and distance counts stay bit-identical.

Layering: imports only sibling :mod:`repro.obs` modules (registry and
export), never :mod:`repro.mam` / :mod:`repro.models` — the TID251 ban
applies here unchanged.
"""

from __future__ import annotations

import json
import threading
import time
import weakref
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import urlsplit

from .export import snapshot_dict, to_prometheus
from .registry import MetricsRegistry, get_registry

__all__ = [
    "WINDOW_QUERIES_PER_SECOND",
    "WINDOW_EVALUATIONS_PER_SECOND",
    "TELEMETRY_SCRAPES",
    "WindowedRate",
    "observe_query_progress",
    "sync_rate_gauges",
    "TelemetryServer",
    "parse_serve_spec",
]

#: Gauge of completed queries per second over the rolling window.
WINDOW_QUERIES_PER_SECOND = "repro_window_queries_per_second"

#: Gauge of charged distance evaluations per second over the rolling window.
WINDOW_EVALUATIONS_PER_SECOND = "repro_window_distance_evaluations_per_second"

#: Counter of scrape requests served by the embedded telemetry server.
TELEMETRY_SCRAPES = "repro_telemetry_requests_total"

#: Default rolling-window width in seconds.
DEFAULT_WINDOW_SECONDS = 15.0


class WindowedRate:
    """Events-per-second over a rolling window of the monotonic clock.

    The window is a ring of ``buckets`` equal-width time slots; adding an
    event count lands it in the slot covering *now*, and :meth:`rate`
    sums the slots still inside the window.  Before a full window has
    elapsed the denominator is the elapsed time since the first event
    (clamped to one slot width), so early readings are rates, not
    averages diluted by empty future slots.

    Thread-safe; ``now`` is injectable everywhere for deterministic
    tests (defaults to :func:`time.monotonic`).
    """

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        *,
        buckets: int = 20,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if window_seconds <= 0.0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.window_seconds = float(window_seconds)
        self._width = self.window_seconds / buckets
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        # slot index -> (absolute bucket number, event count)
        self._slots: list[tuple[int, float]] = [(-1, 0.0)] * buckets
        self._first: float | None = None

    def add(self, count: float, now: float | None = None) -> None:
        """Record *count* events happening at *now*."""
        if count <= 0:
            return
        t = self._clock() if now is None else float(now)
        bucket = int(t / self._width)
        slot = bucket % len(self._slots)
        with self._lock:
            if self._first is None:
                self._first = t
            held, value = self._slots[slot]
            if held != bucket:
                value = 0.0
            self._slots[slot] = (bucket, value + count)

    def total(self, now: float | None = None) -> float:
        """Events currently inside the window."""
        t = self._clock() if now is None else float(now)
        oldest = int(t / self._width) - len(self._slots) + 1
        with self._lock:
            return sum(value for held, value in self._slots if held >= oldest)

    def rate(self, now: float | None = None) -> float:
        """Events per second over the window ending at *now*."""
        t = self._clock() if now is None else float(now)
        with self._lock:
            first = self._first
        if first is None:
            return 0.0
        elapsed = min(self.window_seconds, max(t - first, self._width))
        return self.total(t) / elapsed


class _RateBoard:
    """Per-registry family of :class:`WindowedRate` windows, by label key."""

    def __init__(self, window_seconds: float = DEFAULT_WINDOW_SECONDS) -> None:
        self.window_seconds = float(window_seconds)
        self._lock = threading.Lock()
        self._rates: dict[tuple[str, tuple[tuple[str, str], ...]], WindowedRate] = {}

    def observe(self, name: str, count: float, now: float | None = None, **labels: object) -> None:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            window = self._rates.get(key)
            if window is None:
                window = WindowedRate(self.window_seconds)
                self._rates[key] = window
        window.add(count, now)

    def items(self) -> list[tuple[str, dict[str, str], WindowedRate]]:
        with self._lock:
            entries = list(self._rates.items())
        return [(name, dict(key), window) for (name, key), window in entries]


_RATE_HELP = {
    WINDOW_QUERIES_PER_SECOND: "queries completed per second (rolling window)",
    WINDOW_EVALUATIONS_PER_SECOND: (
        "distance evaluations charged per second (rolling window)"
    ),
}

# Rate boards keyed by registry identity but held weakly, so a dropped
# registry releases its windows (mirrors DistanceInstrument's per-registry
# baselines without keeping registries alive).
_boards: "weakref.WeakKeyDictionary[MetricsRegistry, _RateBoard]" = (
    weakref.WeakKeyDictionary()
)
_boards_lock = threading.Lock()


def _board_for(registry: MetricsRegistry) -> _RateBoard:
    with _boards_lock:
        board = _boards.get(registry)
        if board is None:
            board = _RateBoard()
            _boards[registry] = board
        return board


def observe_query_progress(
    queries: int,
    evaluations: int,
    *,
    method: str = "",
    registry: MetricsRegistry | None = None,
    now: float | None = None,
) -> None:
    """Feed completed work into the rolling-rate windows.

    Called by the batch engine as each chunk of queries finishes and by
    the model layer after each single-query search, so a mid-batch
    scrape sees live throughput.  A no-op (single attribute check) when
    observability is disabled.
    """
    reg = registry if registry is not None else get_registry()
    if not reg.enabled:
        return
    board = _board_for(reg)
    if queries:
        board.observe(WINDOW_QUERIES_PER_SECOND, float(queries), now, method=method)
    if evaluations:
        board.observe(
            WINDOW_EVALUATIONS_PER_SECOND, float(evaluations), now, method=method
        )


def sync_rate_gauges(
    registry: MetricsRegistry | None = None, *, now: float | None = None
) -> None:
    """Materialize every rolling window into its gauge.

    The scrape handlers call this before rendering, so ``/metrics`` and
    ``/snapshot.json`` always carry fresh rates without the hot path
    paying for gauge updates.  A no-op when the registry is disabled or
    has never been fed.
    """
    reg = registry if registry is not None else get_registry()
    if not reg.enabled:
        return
    with _boards_lock:
        board = _boards.get(reg)
    if board is None:
        return
    for name, labels, window in board.items():
        gauge = reg.gauge(name, _RATE_HELP.get(name, ""))
        gauge.set(
            window.rate(now), window=f"{window.window_seconds:g}s", **labels
        )


def parse_serve_spec(spec: str, *, default_host: str = "127.0.0.1") -> tuple[str, int]:
    """Parse a ``[host:]port`` CLI spec into ``(host, port)``.

    ``"0"`` asks the kernel for a free port; ``"0.0.0.0:9100"`` binds all
    interfaces.  (IPv6 literals are not supported — the spec grammar is
    deliberately the minimal one the CLI documents.)
    """
    spec = spec.strip()
    host, _, port_text = spec.rpartition(":")
    if not host:
        host = default_host
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid --serve-metrics spec {spec!r}: want [host:]port") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"invalid --serve-metrics port {port}: want 0..65535")
    return host, port


class _TelemetryHandler(BaseHTTPRequestHandler):
    server_version = "repro-telemetry/1.0"

    # The server is embedded in benches and the CLI; request logging to
    # stderr would corrupt their output streams.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        registry = self.server.resolve_registry()  # type: ignore[attr-defined]
        if registry.enabled:
            registry.counter(
                TELEMETRY_SCRAPES, "requests served by the telemetry endpoint"
            ).inc(1, path=path)
        if path == "/healthz":
            self._send(200, "text/plain; charset=utf-8", b"ok\n")
        elif path == "/metrics":
            sync_rate_gauges(registry)
            body = to_prometheus(registry).encode("utf-8")
            self._send(200, "text/plain; version=0.0.4; charset=utf-8", body)
        elif path == "/snapshot.json":
            sync_rate_gauges(registry)
            body = json.dumps(snapshot_dict(registry), sort_keys=True).encode("utf-8")
            self._send(200, "application/json; charset=utf-8", body)
        else:
            self._send(404, "text/plain; charset=utf-8", b"not found\n")


class _TelemetryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, registry: MetricsRegistry | None) -> None:
        super().__init__(address, _TelemetryHandler)
        self._fixed_registry = registry

    def resolve_registry(self) -> MetricsRegistry:
        # Bound registry when given one, otherwise whatever is active at
        # scrape time — so a server started before `use_registry` still
        # shows the experiment's live registry.
        if self._fixed_registry is not None:
            return self._fixed_registry
        return get_registry()


class TelemetryServer:
    """Serve a registry over HTTP from a background daemon thread.

    ``port=0`` (the default) binds an ephemeral port, published via
    :attr:`address` / :attr:`url` once started.  Use as a context
    manager, or call :meth:`start` / :meth:`stop` explicitly::

        with TelemetryServer(registry) as server:
            print(server.url)         # http://127.0.0.1:PORT
            ...                        # run queries; scrape any time

    With ``registry=None`` the server renders whichever registry is
    active (:func:`~repro.obs.registry.get_registry`) at each request.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry
        self._host = host
        self._port = int(port)
        self._server: _TelemetryHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves port 0)."""
        if self._server is None:
            raise RuntimeError("TelemetryServer is not running")
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "TelemetryServer":
        if self._server is not None:
            return self
        server = _TelemetryHTTPServer((self._host, self._port), self._registry)
        thread = threading.Thread(
            target=server.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._server = server
        self._thread = thread
        thread.start()
        return self

    def stop(self) -> None:
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
