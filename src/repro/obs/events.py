"""Structured traversal events: the raw material of query EXPLAIN.

The paper prices every query in *distance computations*; the counters and
traces say how many were spent, but not *where*.  This module records the
"where": while an :class:`EventBuffer` is active (a :mod:`contextvars`
context manager, mirroring :class:`~repro.engine.trace.QueryTrace`), the
access methods emit structured traversal events —

* ``node_enter`` — a tree node's entries are about to be examined;
* ``lb_check`` — a cheap lower-bound test, with the **actual bound and
  threshold values** (cf. the bound-centric analysis of Ptolemaic
  indexing) and whether it pruned;
* ``prune`` — a subtree/cluster discarded without being descended;
* ``candidate_verify`` — an object verified with a real distance;
* ``result_add`` — an object added to the answer set;

and the :class:`~repro.mam.base.DistancePort` emits a charge record for
every logical distance evaluation it counts.

Two guarantees shape the design:

1. **Off by default, zero interference.**  With no buffer active every
   emit helper is a single ``ContextVar.get`` returning immediately, so
   query answers and all counters stay bit-identical to a build without
   this module (the NullRegistry guarantee extended to events).
2. **Exact totals under bounding.**  The *event record list* is bounded
   (``max_events``) and optionally stride-sampled (``sample_every``) for
   the high-cardinality kinds, but the per-node and global aggregates —
   including the charged scalar/batched evaluation split — are updated
   unconditionally.  ExplainPlan totals therefore equal the
   :class:`~repro.distances.base.CountingDistance` counters exactly no
   matter how small the buffer is.

Layering: this module imports nothing from :mod:`repro.mam`,
:mod:`repro.models` or anywhere else in the library (enforced by the
TID251 ban on ``repro.obs`` importing mam/models); the access methods
import *it*.
"""

from __future__ import annotations

import contextvars
import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "EVENT_KINDS",
    "ROOT",
    "TraversalEvent",
    "NodeStats",
    "EventBuffer",
    "collect_events",
    "current_buffer",
    "events_enabled",
    "emit_node_enter",
    "emit_lb_check",
    "emit_prune",
    "emit_candidate_verify",
    "emit_result_add",
    "emit_charge",
]

#: The event vocabulary, in emission-site order.
EVENT_KINDS = ("node_enter", "lb_check", "prune", "candidate_verify", "result_add")

#: Pseudo-token for "no node": the parent of top-level nodes, the owner of
#: work done before any node is entered (e.g. the pivot table's query-to-
#: pivot distances), and the return value of the emit helpers when no
#: buffer is active.
ROOT = -1

_ACTIVE_BUFFER: contextvars.ContextVar["EventBuffer | None"] = contextvars.ContextVar(
    "repro_active_event_buffer", default=None
)

_NAN = float("nan")


@dataclass(frozen=True)
class TraversalEvent:
    """One recorded traversal event.

    Attributes
    ----------
    seq:
        Global emission order (0-based, shared across kinds).
    kind:
        One of :data:`EVENT_KINDS`.
    node:
        Token of the node this event belongs to — for ``node_enter`` the
        newly entered node itself, otherwise the node whose processing
        emitted it (:data:`ROOT` for pre/post-traversal work).
    parent:
        For ``node_enter``: the parent node's token (:data:`ROOT` for a
        top-level node).  Unused otherwise.
    label:
        Structure-specific annotation (``"leaf"``, ``"internal"``,
        ``"cluster 3"``, a pruning-rule name, ...).
    value:
        The actual lower-bound value (``lb_check``) or the verified
        distance (``candidate_verify`` / ``result_add``); NaN when not
        applicable.
    threshold:
        The value the bound was compared against — query radius plus
        covering radius, the current kNN pruning radius, ... ; NaN when
        not applicable.
    count:
        How many objects/subtrees this event covers (aggregated checks
        and prunes carry counts > 1).
    index:
        Database object index (``candidate_verify`` / ``result_add``),
        -1 otherwise.
    pruned:
        For ``lb_check``: whether the test excluded its target.
    """

    seq: int
    kind: str
    node: int
    parent: int = ROOT
    label: str = ""
    value: float = _NAN
    threshold: float = _NAN
    count: int = 1
    index: int = -1
    pruned: bool = False

    def to_dict(self) -> dict:
        """JSON-able form: NaN fields omitted, numpy scalars coerced.

        Emission sites pass whatever the traversal computed (often numpy
        scalars, whose bool is not JSON serializable), so the coercion to
        builtins happens once here.
        """
        out: dict = {"seq": self.seq, "kind": self.kind, "node": self.node}
        if self.kind == "node_enter":
            out["parent"] = int(self.parent)
        if self.label:
            out["label"] = self.label
        if not math.isnan(self.value):
            out["value"] = float(self.value)
        if not math.isnan(self.threshold):
            out["threshold"] = float(self.threshold)
        if self.count != 1:
            out["count"] = int(self.count)
        if self.index >= 0:
            out["index"] = int(self.index)
        if self.kind == "lb_check":
            out["pruned"] = bool(self.pruned)
        return out


class NodeStats:
    """Exact per-node aggregates (maintained even when records are dropped)."""

    __slots__ = (
        "parent",
        "label",
        "order",
        "charged_calls",
        "charged_rows",
        "lb_checks",
        "pruned",
        "candidates",
        "results",
    )

    def __init__(self, parent: int = ROOT, label: str = "", order: int = 0) -> None:
        self.parent = parent
        self.label = label
        self.order = order
        self.charged_calls = 0
        self.charged_rows = 0
        self.lb_checks = 0
        self.pruned = 0
        self.candidates = 0
        self.results = 0

    @property
    def charged_total(self) -> int:
        """Logical distance computations charged while this node was current."""
        return self.charged_calls + self.charged_rows


class EventBuffer:
    """Bounded, optionally sampled sink for traversal events.

    Parameters
    ----------
    max_events:
        Cap on the number of *recorded* event objects (aggregates keep
        updating past the cap; :attr:`dropped` counts the overflow).
    sample_every:
        Record only every N-th ``lb_check`` / ``candidate_verify`` event
        (the per-object, high-cardinality kinds).  Structural kinds
        (``node_enter``, ``prune``, ``result_add``) are never sampled,
        only capped.  :attr:`sampled_out` counts the skips.

    The per-node registry (:attr:`nodes`) and global totals are exact and
    unbounded: a single query enters at most O(m) nodes, so the memory a
    traversal can pin here is the event list — which is what's capped.
    """

    def __init__(self, *, max_events: int = 10_000, sample_every: int = 1) -> None:
        if max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.max_events = max_events
        self.sample_every = sample_every
        self.events: list[TraversalEvent] = []
        self.dropped = 0
        self.sampled_out = 0
        #: Most recently entered node; charges are attributed to it.
        self.current = ROOT
        #: token -> exact per-node aggregates; ROOT is always present.
        self.nodes: dict[int, NodeStats] = {ROOT: NodeStats(parent=ROOT, label="(query)")}
        # exact global totals
        self.nodes_entered = 0
        self.lb_checks = 0
        #: label -> [checks, pruned]; exact per-bound-kind aggregates,
        #: updated unconditionally like the other totals.  This is what
        #: lets EXPLAIN put triangle and Ptolemaic prune counts side by
        #: side even when the event list is capped or sampled.
        self.lb_labels: dict[str, list[int]] = {}
        self.pruned = 0
        self.candidates_verified = 0
        self.results_added = 0
        self.charged_calls = 0
        self.charged_rows = 0
        self._seq = 0
        self._next_token = 0
        self._stride = 0

    # -- recording ------------------------------------------------------

    def _record(self, event: TraversalEvent) -> None:
        if len(self.events) < self.max_events:
            self.events.append(event)
        else:
            self.dropped += 1

    def _take_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def enter_node(self, parent: int = ROOT, label: str = "") -> int:
        """Allocate a token for a newly entered node and record the event."""
        token = self._next_token
        self._next_token += 1
        self.nodes[token] = NodeStats(parent=parent, label=label, order=token)
        self.nodes_entered += 1
        self.current = token
        self._record(
            TraversalEvent(
                seq=self._take_seq(), kind="node_enter", node=token,
                parent=parent, label=label,
            )
        )
        return token

    def lb_check(
        self,
        node: int,
        value: float,
        threshold: float,
        *,
        pruned: bool,
        count: int = 1,
        label: str = "",
    ) -> None:
        """A lower-bound test with its actual bound and threshold values."""
        stats = self.nodes.get(node)
        if stats is None:
            stats = self.nodes[ROOT]
        stats.lb_checks += count
        self.lb_checks += count
        if label:
            agg = self.lb_labels.setdefault(label, [0, 0])
            agg[0] += count
            if pruned:
                agg[1] += count
        self._stride += 1
        if self._stride % self.sample_every:
            self.sampled_out += 1
            return
        self._record(
            TraversalEvent(
                seq=self._take_seq(), kind="lb_check", node=node, label=label,
                value=value, threshold=threshold, count=count, pruned=pruned,
            )
        )

    def prune(self, node: int, count: int = 1, label: str = "") -> None:
        """*count* subtrees/clusters discarded without being descended."""
        if count <= 0:
            return
        stats = self.nodes.get(node)
        if stats is None:
            stats = self.nodes[ROOT]
        stats.pruned += count
        self.pruned += count
        self._record(
            TraversalEvent(
                seq=self._take_seq(), kind="prune", node=node,
                label=label, count=count,
            )
        )

    def candidate_verify(
        self, node: int, index: int, distance: float, count: int = 1
    ) -> None:
        """An object (or a batch of *count*) verified with a real distance."""
        stats = self.nodes.get(node)
        if stats is None:
            stats = self.nodes[ROOT]
        stats.candidates += count
        self.candidates_verified += count
        self._stride += 1
        if self._stride % self.sample_every:
            self.sampled_out += 1
            return
        self._record(
            TraversalEvent(
                seq=self._take_seq(), kind="candidate_verify", node=node,
                value=distance, count=count, index=index,
            )
        )

    def result_add(self, node: int, index: int, distance: float) -> None:
        """An object added to the final answer."""
        stats = self.nodes.get(node)
        if stats is None:
            stats = self.nodes[ROOT]
        stats.results += 1
        self.results_added += 1
        self._record(
            TraversalEvent(
                seq=self._take_seq(), kind="result_add", node=node,
                value=distance, index=index,
            )
        )

    def charge(self, calls: int = 0, rows: int = 0) -> None:
        """Logical distance evaluations charged while :attr:`current` runs.

        Called from the :class:`~repro.mam.base.DistancePort` charging
        paths, i.e. at exactly the sites where the
        :class:`~repro.distances.base.CountingDistance` counts — which is
        what makes the explain totals equal the counter exactly.
        """
        if not (calls or rows):
            return
        stats = self.nodes.get(self.current)
        if stats is None:
            stats = self.nodes[ROOT]
        stats.charged_calls += calls
        stats.charged_rows += rows
        self.charged_calls += calls
        self.charged_rows += rows

    # -- introspection --------------------------------------------------

    @property
    def charged_total(self) -> int:
        """Total logical distance computations charged (scalar + batched)."""
        return self.charged_calls + self.charged_rows

    def children_of(self, token: int) -> list[int]:
        """Tokens of *token*'s children, in entry order."""
        return sorted(
            (t for t, s in self.nodes.items() if t != ROOT and s.parent == token),
            key=lambda t: self.nodes[t].order,
        )

    def events_for(self, token: int, kinds: "tuple[str, ...] | None" = None) -> list[TraversalEvent]:
        """Recorded events attributed to *token* (optionally by kind)."""
        return [
            ev
            for ev in self.events
            if ev.node == token and (kinds is None or ev.kind in kinds)
        ]


def current_buffer() -> "EventBuffer | None":
    """The buffer collecting this context's traversal events, if any."""
    return _ACTIVE_BUFFER.get()


def events_enabled() -> bool:
    """Whether an event buffer is active in this context.

    Access methods use this to skip building per-entry bound values that
    only exist for event emission — keeping the disabled hot path free of
    any extra arithmetic.
    """
    return _ACTIVE_BUFFER.get() is not None


@contextmanager
def collect_events(buffer: "EventBuffer | None") -> Iterator["EventBuffer | None"]:
    """Make *buffer* the active event sink for the duration of the block.

    Passing ``None`` is a no-op, so call sites need no branching.
    """
    if buffer is None:
        yield None
        return
    token = _ACTIVE_BUFFER.set(buffer)
    try:
        yield buffer
    finally:
        _ACTIVE_BUFFER.reset(token)


# ----------------------------------------------------------------------
# emit helpers — each is a single ContextVar.get when no buffer is active
# ----------------------------------------------------------------------

def emit_node_enter(parent: int = ROOT, label: str = "") -> int:
    """Allocate and return a node token (:data:`ROOT` when disabled)."""
    buf = _ACTIVE_BUFFER.get()
    if buf is None:
        return ROOT
    return buf.enter_node(parent, label)


def emit_lb_check(
    node: int,
    value: float,
    threshold: float,
    *,
    pruned: bool,
    count: int = 1,
    label: str = "",
) -> None:
    """Record a lower-bound test: ``value`` vs ``threshold`` → *pruned*."""
    buf = _ACTIVE_BUFFER.get()
    if buf is not None:
        buf.lb_check(node, value, threshold, pruned=pruned, count=count, label=label)


def emit_prune(node: int, count: int = 1, label: str = "") -> None:
    """Record *count* subtrees discarded by a cheap lower bound."""
    buf = _ACTIVE_BUFFER.get()
    if buf is not None:
        buf.prune(node, count, label)


def emit_candidate_verify(node: int, index: int, distance: float, count: int = 1) -> None:
    """Record an object verified with a real distance evaluation."""
    buf = _ACTIVE_BUFFER.get()
    if buf is not None:
        buf.candidate_verify(node, index, distance, count)


def emit_result_add(node: int, index: int, distance: float) -> None:
    """Record an object entering the answer set."""
    buf = _ACTIVE_BUFFER.get()
    if buf is not None:
        buf.result_add(node, index, distance)


def emit_charge(calls: int = 0, rows: int = 0) -> None:
    """Record logical distance evaluations (the DistancePort hook)."""
    buf = _ACTIVE_BUFFER.get()
    if buf is not None:
        buf.charge(calls, rows)
