"""Structured JSON-lines logging with trace-context correlation.

One record per *event* — a query answered, an index built, a plan
chosen, a query that raised — as a single JSON object per line, so the
log is grep-able, ``jq``-able, and joinable against the timeline and
metrics exports through the shared ``trace_id``
(:mod:`repro.obs.context`).

The wiring mirrors the metrics registry exactly: a process-wide active
logger defaulting to the no-op :data:`NULL_LOGGER`, activated with
:func:`use_logger` (or ``repro ... --log-json PATH`` on the CLI).  Hot
paths call :func:`log_event`, which with the null logger active costs
one attribute check — the disabled path allocates nothing, locks
nothing, and (critically for the count-baseline fixtures) never
evaluates a distance.

Record schema (fields beyond these two are event-specific, and ``None``
values are dropped):

* ``ts`` — UNIX epoch seconds (wall clock, for cross-host correlation);
* ``event`` — ``"query"`` / ``"batch"`` / ``"build"`` / ``"plan"`` /
  ``"query_error"``;
* ``trace_id`` / ``span_id`` — attached automatically from the active
  :class:`~repro.obs.context.TraceContext` and open span, when present.

``docs/api_guide.md`` §15 maps the event fields onto the paper's
Table 1/2 columns.

Layering: imports only the standard library and sibling
:mod:`repro.obs` modules (the TID251 ban applies here as everywhere in
the package).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator

from .context import current_trace_context
from .spans import current_span

__all__ = [
    "JsonLinesLogger",
    "NullLogger",
    "NULL_LOGGER",
    "get_logger",
    "set_logger",
    "use_logger",
    "log_event",
]


class JsonLinesLogger:
    """Append structured event records to a stream or file, one per line.

    Parameters
    ----------
    target:
        A path (opened for writing, truncating — one run, one log) or
        any object with a ``write(str)`` method.
    clock:
        Timestamp source; injectable for deterministic tests.

    Thread-safe: each record is serialized under a lock and written as
    one ``write`` call followed by a flush, so concurrent batch chunks
    never interleave bytes and ``tail -f`` sees whole lines.
    """

    #: Hot paths test this single attribute to skip all logging work.
    enabled = True

    def __init__(
        self,
        target: "str | Path | Any",
        *,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        if hasattr(target, "write"):
            self.path: Path | None = None
            self._stream = target
            self._owns_stream = False
        else:
            self.path = Path(target)
            self._stream = self.path.open("w", encoding="utf-8")
            self._owns_stream = True
        self._records = 0

    @property
    def records_written(self) -> int:
        """Records emitted so far."""
        with self._lock:
            return self._records

    def log(self, event: str, **fields: object) -> None:
        """Emit one event record; ``None``-valued fields are dropped.

        ``trace_id`` and ``span_id`` are filled from the active trace
        context and open span unless the caller supplies them.
        """
        record: dict[str, Any] = {"ts": round(float(self._clock()), 6), "event": str(event)}
        if "trace_id" not in fields:
            context = current_trace_context()
            if context is not None:
                record["trace_id"] = context.trace_id
        if "span_id" not in fields:
            open_span = current_span()
            if open_span is not None and open_span.span_id:
                record["span_id"] = open_span.span_id
        for key, value in fields.items():
            if value is None:
                continue
            record[key] = value
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            flush = getattr(self._stream, "flush", None)
            if flush is not None:
                flush()
            self._records += 1

    def close(self) -> None:
        """Close the underlying file (no-op for caller-owned streams)."""
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonLinesLogger":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullLogger(JsonLinesLogger):
    """The disabled logger: :meth:`log` is a no-op.

    Mirrors :class:`~repro.obs.registry.NullRegistry` — code written
    against a live logger runs unchanged, and adds near-zero overhead,
    when structured logging is off.
    """

    enabled = False

    def __init__(self) -> None:  # no stream, no lock contention
        self.path = None
        self._records = 0
        self._lock = threading.Lock()
        self._owns_stream = False

    def log(self, event: str, **fields: object) -> None:
        pass

    def close(self) -> None:
        pass


#: The process-wide disabled logger (the default active logger).
NULL_LOGGER = NullLogger()

# A plain module global (not a contextvar), for the same reason as the
# registry: worker threads spawned by the batch engine must see the
# logger the main thread activated.
_active: JsonLinesLogger = NULL_LOGGER
_active_lock = threading.Lock()


def get_logger() -> JsonLinesLogger:
    """The active logger (the :data:`NULL_LOGGER` unless one was set)."""
    return _active


def set_logger(logger: JsonLinesLogger | None) -> JsonLinesLogger:
    """Activate *logger* process-wide (``None`` restores the null one).

    Returns the previously active logger so callers can restore it.
    """
    global _active
    with _active_lock:
        previous = _active
        _active = logger if logger is not None else NULL_LOGGER
    return previous


@contextmanager
def use_logger(logger: JsonLinesLogger | None) -> Iterator[JsonLinesLogger]:
    """Activate *logger* for the duration of the block."""
    previous = set_logger(logger)
    try:
        yield get_logger()
    finally:
        set_logger(previous)


def log_event(event: str, **fields: object) -> None:
    """Emit one record through the active logger (no-op when disabled)."""
    logger = _active
    if not logger.enabled:
        return
    logger.log(event, **fields)
