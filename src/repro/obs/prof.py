"""Zero-dependency sampling profiler with span-phase attribution.

The counters say *how many* distance evaluations each model spends
(Tables 1-2); this profiler says *where the wall-clock goes* — kernel
arithmetic vs tree traversal vs QMap transform vs pickling — by
periodically sampling every thread's Python stack with
:func:`sys._current_frames` from a background thread.  No signals, no
C extensions, no third-party packages, and **off by default**: nothing
in this module runs unless a :class:`SamplingProfiler` is explicitly
started, so the bit-identical count baselines are untouched (the
profiler only ever *reads* frames; it never writes a counter the
experiments check).

Each sample is attributed to the innermost open
:func:`~repro.obs.spans.span` of the sampled thread (via the
cross-thread open-span table) by prefixing the stack with a synthetic
``span:<name>`` frame — so a flamegraph groups first by instrumented
phase (``build/mtree``, ``query/batch/knn``, ``query/chunk/...`` in a
worker) and only then by code path.

Two export formats, both standard:

* **collapsed stacks** (:meth:`SamplingProfiler.collapsed`) — one
  ``frame;frame;frame count`` line per unique stack, the input format of
  Brendan Gregg's ``flamegraph.pl`` and of speedscope's importer;
* **speedscope JSON** (:meth:`SamplingProfiler.speedscope`) — the
  ``"sampled"`` profile type of https://www.speedscope.app, weights in
  seconds.

Surfaced as ``repro query --profile-out`` / ``repro explain
--profile-out`` and the ``REPRO_BENCH_PROFILE`` environment variable in
``benchmarks/_common.py``.

Layering: imports only the standard library and sibling
:mod:`repro.obs` modules.
"""

from __future__ import annotations

import json
import sys
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping

from .registry import MetricsRegistry, get_registry
from .spans import open_span_for_thread

__all__ = [
    "PROFILE_SAMPLES",
    "SamplingProfiler",
    "profile_to",
]

#: Counter of profiler samples attributed to each open span phase.
PROFILE_SAMPLES = "repro_profile_samples_total"

#: Label used for samples taken while no span was open on the thread.
_NO_SPAN = "(no span)"


def _frame_name(frame: Any) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__")
    if not module:
        module = Path(code.co_filename).stem or "?"
    return f"{module}.{code.co_name}"


class SamplingProfiler:
    """Periodic whole-process Python stack sampler.

    Parameters
    ----------
    hz:
        Target sampling rate in samples/second (per thread).  The
        sampler is a plain daemon thread waiting on an event, so the
        achieved rate is approximate; each recorded stack is weighted by
        the *configured* period, keeping total weight ≈ wall time.
    max_depth:
        Frames kept per stack (innermost ``max_depth``), bounding memory
        on deeply recursive code.

    Samples are aggregated as ``{stack tuple: count}`` — identical
    stacks cost one dict increment, so hours of profiling stay small.
    The sampler never samples its own thread.
    """

    def __init__(self, hz: float = 200.0, *, max_depth: int = 64) -> None:
        if not hz > 0:
            raise ValueError(f"profiler hz must be > 0, got {hz}")
        if max_depth < 1:
            raise ValueError(f"profiler max_depth must be >= 1, got {max_depth}")
        self.hz = float(hz)
        self.interval = 1.0 / self.hz
        self.max_depth = int(max_depth)
        self._counts: dict[tuple[str, ...], int] = {}
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._sampler_ident: int | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the sampling thread is currently alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Start the background sampling thread (idempotent)."""
        if self.running:
            return self
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and join the sampler thread."""
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join()
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _loop(self) -> None:
        self._sampler_ident = threading.get_ident()
        while not self._stop_event.wait(self.interval):
            self.sample_once()

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def sample_once(self, frames: Mapping[int, Any] | None = None) -> int:
        """Take one sample of every thread; returns stacks recorded.

        *frames* injects a ``{thread_ident: frame}`` mapping for tests;
        the default is the live :func:`sys._current_frames`.
        """
        if frames is None:
            frames = sys._current_frames()
        names = {t.ident: t.name for t in threading.enumerate()}
        recorded = 0
        for ident, frame in frames.items():
            if ident == self._sampler_ident:
                continue
            stack = self._stack_of(ident, frame, names.get(ident))
            with self._lock:
                self._counts[stack] = self._counts.get(stack, 0) + 1
            recorded += 1
        return recorded

    def _stack_of(
        self, ident: int, frame: Any, thread_name: str | None
    ) -> tuple[str, ...]:
        frames: list[str] = []
        while frame is not None and len(frames) < self.max_depth:
            frames.append(_frame_name(frame))
            frame = frame.f_back
        frames.reverse()  # root first, the collapsed-stack convention
        open_span = open_span_for_thread(ident)
        phase = f"span:{open_span.name}" if open_span is not None else _NO_SPAN
        root = thread_name or f"thread-{ident}"
        return (root, phase, *frames)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    @property
    def sample_count(self) -> int:
        """Total stacks recorded so far."""
        with self._lock:
            return sum(self._counts.values())

    def stacks(self) -> dict[tuple[str, ...], int]:
        """Snapshot of ``{stack (root-first): samples}``."""
        with self._lock:
            return dict(self._counts)

    def phase_counts(self) -> dict[str, int]:
        """Samples per attributed span phase (``span:`` prefix stripped)."""
        out: dict[str, int] = {}
        for stack, count in self.stacks().items():
            phase = stack[1] if len(stack) > 1 else _NO_SPAN
            if phase.startswith("span:"):
                phase = phase[len("span:"):]
            out[phase] = out.get(phase, 0) + count
        return out

    def collapsed(self) -> str:
        """Brendan Gregg collapsed-stack text (``a;b;c count`` lines)."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.stacks().items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, name: str = "repro profile") -> dict[str, Any]:
        """The profile as a speedscope ``"sampled"``-type JSON document."""
        frame_index: dict[str, int] = {}
        samples: list[list[int]] = []
        weights: list[float] = []
        for stack, count in sorted(self.stacks().items()):
            indices = []
            for frame in stack:
                pos = frame_index.setdefault(frame, len(frame_index))
                indices.append(pos)
            samples.append(indices)
            weights.append(count * self.interval)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro.obs.prof",
            "activeProfileIndex": 0,
            "shared": {"frames": [{"name": frame} for frame in frame_index]},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0.0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
        }

    def write(self, path: "str | Path") -> Path:
        """Write the profile to *path*; format chosen by extension.

        ``.json`` writes speedscope JSON, anything else the collapsed
        text.  Returns the path written.
        """
        target = Path(path)
        if target.suffix.lower() == ".json":
            target.write_text(
                json.dumps(self.speedscope(name=target.stem), indent=1) + "\n",
                encoding="utf-8",
            )
        else:
            target.write_text(self.collapsed(), encoding="utf-8")
        return target

    def record_to(self, registry: MetricsRegistry | None = None) -> None:
        """Mirror per-phase sample counts into a registry counter."""
        reg = registry if registry is not None else get_registry()
        if not reg.enabled:
            return
        counter = reg.counter(
            PROFILE_SAMPLES, "profiler samples attributed to each span phase"
        )
        for phase, count in self.phase_counts().items():
            counter.inc(count, span=phase)


@contextmanager
def profile_to(
    path: "str | Path", *, hz: float = 200.0
) -> Iterator[SamplingProfiler]:
    """Profile the enclosed block and write the result to *path*.

    The CLI/bench convenience wrapper: format follows the path's
    extension (see :meth:`SamplingProfiler.write`), and the per-phase
    sample counts are mirrored into the active registry (if any) so
    ``repro report`` can show where samples landed.
    """
    profiler = SamplingProfiler(hz=hz)
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()
        profiler.record_to()
        profiler.write(path)
