"""Common interfaces of the access methods (paper Sections 2 and 4).

All indexes in :mod:`repro.mam` and :mod:`repro.sam` implement
:class:`AccessMethod`: they are built over an ``(m, n)`` database of row
vectors plus a black-box distance function, and answer the paper's two
query types —

* **range query** ``(q, rad)``: all objects within distance ``rad`` of ``q``;
* **kNN query** ``(q, k)``: the ``k`` nearest objects.

Results are :class:`Neighbor` records ordered by distance (ties broken by
index) so that every method's answer can be compared bit-for-bit with the
sequential scan in the correctness tests.

The distance is always accessed through :class:`DistancePort`, which
understands plain callables as well as
:class:`~repro.distances.base.CountingDistance` wrappers and optional
vectorized one-to-many forms.  The evaluation counters behind that port are
the cost measure of the complexity experiments (Tables 1 and 2).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from .._typing import ArrayLike, as_vector, as_vector_batch
from ..engine.trace import activate_trace
from ..exceptions import EmptyIndexError, IndexStateError, QueryError

if TYPE_CHECKING:
    from ..engine.batch import BatchExecutor
    from ..engine.trace import QueryTrace, TraceCollector

__all__ = ["Neighbor", "DistancePort", "AccessMethod", "neighbors_from_distances"]


@dataclass(frozen=True, order=True)
class Neighbor:
    """One query answer: the object's distance and database index.

    Ordering is by ``(distance, index)``, the deterministic convention all
    access methods share.
    """

    distance: float
    index: int


class DistancePort:
    """Uniform access to a distance function, scalar or vectorized.

    Parameters
    ----------
    func:
        ``d(u, v) -> float``.  If the object also has ``one_to_many``
        (e.g. :class:`~repro.distances.base.CountingDistance`), that method
        is used for batched evaluations; otherwise *one_to_many* is used
        when supplied, else a Python loop.
    one_to_many:
        Optional vectorized ``d1m(q, rows) -> ndarray`` fallback.

    Notes
    -----
    Batched evaluation counts one logical distance computation per row —
    the same cost model the paper uses, where vectorization changes
    constants but not the number of distances.
    """

    def __init__(
        self,
        func: Callable[[np.ndarray, np.ndarray], float],
        *,
        one_to_many: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    ) -> None:
        self._func = func
        bound = getattr(func, "one_to_many", None)
        self._one_to_many = bound if callable(bound) else one_to_many

    def pair(self, u: np.ndarray, v: np.ndarray) -> float:
        """One distance evaluation."""
        return float(self._func(u, v))

    def many(self, q: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Distances from *q* to every row of *rows*."""
        if rows.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        if self._one_to_many is not None:
            return np.asarray(self._one_to_many(q, rows), dtype=np.float64)
        return np.array([self._func(q, row) for row in rows], dtype=np.float64)

    @property
    def raw(self) -> Callable[[np.ndarray, np.ndarray], float]:
        """The wrapped scalar distance function."""
        return self._func


def neighbors_from_distances(
    distances: ArrayLike, indices: Sequence[int] | np.ndarray | None = None
) -> list[Neighbor]:
    """Sorted :class:`Neighbor` list from parallel distance/index arrays."""
    dist = np.asarray(distances, dtype=np.float64)
    if indices is None:
        idx: Sequence[int] = range(dist.shape[0])
    else:
        idx = list(indices)
    out = [Neighbor(float(d), int(i)) for d, i in zip(dist, idx)]
    out.sort()
    return out


class AccessMethod(ABC):
    """Base class for all metric/spatial access methods.

    Subclasses receive the database and the distance at construction,
    perform any build work there (or via dynamic inserts), and implement
    :meth:`_range_search` / :meth:`_knn_search`.  Argument validation and
    result-ordering guarantees live here so every index behaves uniformly.
    """

    def __init__(self, database: ArrayLike, distance: DistancePort | Callable) -> None:
        data = as_vector_batch(database, name="database")
        if data.shape[0] == 0:
            raise EmptyIndexError("cannot build an index over an empty database")
        self._data = data
        self._port = distance if isinstance(distance, DistancePort) else DistancePort(distance)

    @property
    def database(self) -> np.ndarray:
        """The indexed ``(m, n)`` database (row order = object index)."""
        return self._data

    @property
    def size(self) -> int:
        """Number of indexed objects ``m``."""
        return self._data.shape[0]

    @property
    def dim(self) -> int:
        """Vector dimensionality ``n``."""
        return self._data.shape[1]

    @property
    def distance(self) -> DistancePort:
        """The distance port used for every evaluation."""
        return self._port

    def range_search(self, query: ArrayLike, radius: float) -> list[Neighbor]:
        """All objects within *radius* of *query*, sorted by distance."""
        q = as_vector(query, self.dim, name="query")
        if radius < 0.0:
            raise QueryError(f"radius must be non-negative, got {radius}")
        result = self._range_search(q, float(radius))
        result.sort()
        return result

    def knn_search(self, query: ArrayLike, k: int) -> list[Neighbor]:
        """The *k* nearest objects (fewer only if the database is smaller)."""
        q = as_vector(query, self.dim, name="query")
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        result = self._knn_search(q, min(k, self.size))
        result.sort()
        return result

    def range_search_batch(
        self,
        queries: ArrayLike,
        radius: float,
        *,
        executor: "str | BatchExecutor | None" = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        collector: "TraceCollector | None" = None,
    ) -> list[list[Neighbor]]:
        """Range queries for a whole batch, one result list per query.

        Results are bit-identical to looping :meth:`range_search`; the
        batch form validates once, lets structures with a vectorized
        batch hook amortize their scans, and can fan chunks out over a
        thread or process pool (see :mod:`repro.engine`).  Attach a
        :class:`~repro.engine.trace.TraceCollector` to receive one
        :class:`~repro.engine.trace.QueryTrace` per query.
        """
        from ..engine.batch import run_query_batch  # engine sits above mam

        return run_query_batch(
            self,
            "range",
            queries,
            float(radius),
            executor=executor,
            workers=workers,
            chunk_size=chunk_size,
            collector=collector,
        )

    def knn_search_batch(
        self,
        queries: ArrayLike,
        k: int,
        *,
        executor: "str | BatchExecutor | None" = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        collector: "TraceCollector | None" = None,
    ) -> list[list[Neighbor]]:
        """kNN for a whole batch of queries; see :meth:`range_search_batch`."""
        from ..engine.batch import run_query_batch  # engine sits above mam

        return run_query_batch(
            self,
            "knn",
            queries,
            k,
            executor=executor,
            workers=workers,
            chunk_size=chunk_size,
            collector=collector,
        )

    def _range_search_batch(
        self,
        queries: np.ndarray,
        radius: float,
        traces: "list[QueryTrace] | None" = None,
    ) -> list[list[Neighbor]]:
        """Chunk hook: already-validated queries, sorted per-query results.

        The default runs the single-query search per row under that
        query's trace; subclasses with genuinely vectorizable batch
        plans (sequential file, pivot table) override it.
        """
        out: list[list[Neighbor]] = []
        for pos in range(queries.shape[0]):
            trace = traces[pos] if traces is not None else None
            start = perf_counter()
            with activate_trace(trace):
                result = self._range_search(queries[pos], radius)
            result.sort()
            if trace is not None:
                trace.seconds += perf_counter() - start
                trace.results = len(result)
            out.append(result)
        return out

    def _knn_search_batch(
        self,
        queries: np.ndarray,
        k: int,
        traces: "list[QueryTrace] | None" = None,
    ) -> list[list[Neighbor]]:
        """Chunk hook for kNN batches (*k* already clamped); see above."""
        out: list[list[Neighbor]] = []
        for pos in range(queries.shape[0]):
            trace = traces[pos] if traces is not None else None
            start = perf_counter()
            with activate_trace(trace):
                result = self._knn_search(queries[pos], k)
            result.sort()
            if trace is not None:
                trace.seconds += perf_counter() - start
                trace.results = len(result)
            out.append(result)
        return out

    @property
    def supports_inserts(self) -> bool:
        """Whether this structure implements the dynamic-insert hook."""
        return type(self)._register_insert is not AccessMethod._register_insert

    def insert(self, vector: ArrayLike) -> int:
        """Dynamically insert one object, returning its new index.

        The paper's Section 6: the QMap model "allows similarity searching
        in dynamically changing databases without any distortion" — unlike
        the database-dependent SVD/KLT reductions of Section 2.3.1, whose
        embeddings degrade as the database drifts.  Every access method in
        this library therefore supports dynamic inserts; structures
        designed around static builds (vp-tree, GNAT, VA-file) absorb new
        objects into existing regions, which keeps queries exact at the
        cost of gradually looser partitions.

        The operation is atomic with respect to the stored database: if
        the structure does not support inserts, or its insert hook fails
        partway, the appended row is rolled back so ``size`` and queries
        are exactly as before the call.
        """
        v = as_vector(vector, self.dim, name="vector")
        if not self.supports_inserts:
            raise IndexStateError(
                f"{type(self).__name__} does not support dynamic inserts"
            )
        index = self.size
        previous = self._data
        self._data = np.vstack([previous, v.reshape(1, -1)])
        try:
            self._register_insert(index, self._data[index])
        except BaseException:
            self._data = previous
            raise
        return index

    def _register_insert(self, index: int, vector: np.ndarray) -> None:
        """Subclass hook updating the structure for a freshly stored row."""
        raise IndexStateError(
            f"{type(self).__name__} does not support dynamic inserts"
        )

    @abstractmethod
    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        """Subclass hook; may return results unsorted."""

    @abstractmethod
    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        """Subclass hook; may return results unsorted."""


class _KnnHeap:
    """Bounded max-heap of the current k best neighbors.

    Shared helper for best-first kNN algorithms: keeps the k smallest
    distances seen, exposes the current pruning radius, and resolves
    distance ties by preferring smaller indices so results are
    deterministic.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        self._k = k
        # Max-heap via negated distance; tie-break prefers *larger* index
        # for eviction, i.e. keeps smaller indices.
        self._heap: list[tuple[float, int]] = []

    def offer(self, distance: float, index: int) -> None:
        """Consider an object for the top-k."""
        item = (-distance, -index)
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, item)
        elif item > self._heap[0]:
            heapq.heapreplace(self._heap, item)

    @property
    def radius(self) -> float:
        """Current kth-best distance (inf while the heap is not full)."""
        if len(self._heap) < self._k:
            return float("inf")
        return -self._heap[0][0]

    def neighbors(self) -> list[Neighbor]:
        """The collected neighbors, sorted."""
        out = [Neighbor(-d, -i) for d, i in self._heap]
        out.sort()
        return out

    def __len__(self) -> int:
        return len(self._heap)
