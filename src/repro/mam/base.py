"""Common interfaces of the access methods (paper Sections 2 and 4).

All indexes in :mod:`repro.mam` and :mod:`repro.sam` implement
:class:`AccessMethod`: they are built over an ``(m, n)`` database of row
vectors plus a black-box distance function, and answer the paper's two
query types —

* **range query** ``(q, rad)``: all objects within distance ``rad`` of ``q``;
* **kNN query** ``(q, k)``: the ``k`` nearest objects.

Results are :class:`Neighbor` records ordered by distance (ties broken by
index) so that every method's answer can be compared bit-for-bit with the
sequential scan in the correctness tests.

The distance is always accessed through :class:`DistancePort`, which
understands plain callables as well as
:class:`~repro.distances.base.CountingDistance` wrappers and optional
vectorized one-to-many forms.  The evaluation counters behind that port are
the cost measure of the complexity experiments (Tables 1 and 2).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from .._typing import ArrayLike, as_vector, as_vector_batch
from ..distances.base import CountingDistance
from ..engine.trace import activate_trace, current_trace
from ..exceptions import EmptyIndexError, IndexStateError, QueryError, StorageError
from ..obs.events import emit_charge

if TYPE_CHECKING:
    from ..engine.batch import BatchExecutor
    from ..engine.trace import QueryTrace, TraceCollector

__all__ = [
    "Neighbor",
    "DistancePort",
    "BoundQuery",
    "AccessMethod",
    "NodeBatchedSearchMixin",
    "PRUNE_SLACK_REL",
    "prune_slack",
    "neighbors_from_distances",
    "state_array",
    "state_int",
    "state_float",
    "state_str",
]


# ----------------------------------------------------------------------
# structural-state helpers (snapshot protocol)
# ----------------------------------------------------------------------

def state_array(
    state: dict[str, np.ndarray], key: str, *, dtype: object | None = None
) -> np.ndarray:
    """Pop a required array from a structural-state dict.

    Raises :class:`~repro.exceptions.StorageError` when the key is absent,
    so a snapshot written for a different method (or a truncated file)
    fails loudly instead of surfacing as a ``KeyError`` deep in a restore.
    """
    try:
        value = state.pop(key)
    except KeyError:
        raise StorageError(f"snapshot state is missing {key!r}") from None
    arr = np.asarray(value)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    return arr


def state_int(state: dict[str, np.ndarray], key: str) -> int:
    """Pop a scalar integer from a structural-state dict."""
    arr = state_array(state, key)
    if arr.size != 1:
        raise StorageError(f"snapshot state entry {key!r} is not a scalar")
    return int(arr.reshape(()))


def state_float(state: dict[str, np.ndarray], key: str) -> float:
    """Pop a scalar float from a structural-state dict."""
    arr = state_array(state, key)
    if arr.size != 1:
        raise StorageError(f"snapshot state entry {key!r} is not a scalar")
    return float(arr.reshape(()))


def state_str(state: dict[str, np.ndarray], key: str) -> str:
    """Pop a scalar string from a structural-state dict."""
    arr = state_array(state, key)
    if arr.size != 1:
        raise StorageError(f"snapshot state entry {key!r} is not a scalar")
    return str(arr.reshape(()))

#: Relative slack for pruning tests that compare kernel-evaluated query
#: distances against build-stored bounds (covering radii, parent
#: distances, vantage medians, GNAT ranges).  Those bounds are frequently
#: *exactly tight* — a covering radius IS some member's build-time
#: distance — and the batched Gram kernels agree with the build
#: arithmetic only to the last few ulps, so a self-query (or an exact
#: duplicate) would otherwise prune the very subtree holding its zero-
#: distance match.  Slack only ever admits a subtree, never excludes one,
#: so results stay exact; at 1e-12 relative it changes which nodes are
#: visited only at bitwise-boundary coincidences, where the pre-kernel
#: scalar arithmetic visited the node too.
PRUNE_SLACK_REL = 1e-12


def prune_slack(*terms: float) -> float:
    """Ulp-scale tolerance for a pruning comparison involving *terms*."""
    total = 0.0
    for t in terms:
        total += abs(t)
    return PRUNE_SLACK_REL * total


@dataclass(frozen=True, order=True)
class Neighbor:
    """One query answer: the object's distance and database index.

    Ordering is by ``(distance, index)``, the deterministic convention all
    access methods share.
    """

    distance: float
    index: int


class DistancePort:
    """Uniform access to a distance function, scalar or vectorized.

    Parameters
    ----------
    func:
        ``d(u, v) -> float``.  If the object also has ``one_to_many``
        (e.g. :class:`~repro.distances.base.CountingDistance`), that method
        is used for batched evaluations; otherwise *one_to_many* is used
        when supplied, else a Python loop.
    one_to_many:
        Optional vectorized ``d1m(q, rows) -> ndarray`` fallback.
    block_rows:
        When set, the resolved kernel evaluates batches through the
        tiled block-size-invariant primitives of
        :mod:`repro.kernels.blocked` — the out-of-core configuration for
        memory-mapped float32 databases.  ``None`` (default) keeps every
        existing code path byte-identical.

    Notes
    -----
    Batched evaluation counts one logical distance computation per row —
    the same cost model the paper uses, where vectorization changes
    constants but not the number of distances.
    """

    def __init__(
        self,
        func: Callable[[np.ndarray, np.ndarray], float],
        *,
        one_to_many: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
        use_kernel: bool = True,
        block_rows: int | None = None,
    ) -> None:
        self._func = func
        bound = getattr(func, "one_to_many", None)
        self._one_to_many = bound if callable(bound) else one_to_many
        counter = func if isinstance(func, CountingDistance) else None
        self._counter = counter
        # Uncounted forms: the kernel layer computes distances physically
        # in batches and charges the counter by the *logical* access
        # pattern, so it must never go through the counting wrappers.
        self._scalar_uncounted = counter.func if counter is not None else func
        self._vector_uncounted = (
            counter.vectorized if counter is not None else self._one_to_many
        )
        self._block_rows = block_rows
        if use_kernel:
            from ..kernels.kernels import resolve_kernel  # kernels sit below mam

            self._kernel = resolve_kernel(func, block_rows=block_rows)
        else:
            self._kernel = None
        if block_rows is not None and self._kernel is None:
            raise QueryError(
                "block_rows requires a kernel-backed distance (QFD or "
                "Euclidean); this distance has no batched kernel"
            )
        self._norms: np.ndarray | None = None
        self._norms_source: np.ndarray | None = None

    def pair(self, u: np.ndarray, v: np.ndarray) -> float:
        """One distance evaluation."""
        emit_charge(calls=1)
        return float(self._func(u, v))

    def many(self, q: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Distances from *q* to every row of *rows*."""
        if rows.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        if self._block_rows is not None and self._kernel is not None:
            # Out-of-core scan: stream tiles through the blocked kernel
            # (with the cached database norms when *rows* is the attached
            # store) instead of the counted one-to-many, whose difference
            # form would materialize full n x d float64 temporaries.
            # Charging is identical: one batched row per candidate.
            n = int(rows.shape[0])
            emit_charge(rows=n)
            if self._counter is not None:
                self._counter.add_counts(batch_rows=n)
            norms = self._norms if rows is self._norms_source else None
            return self._kernel.one_to_many(q, rows, row_norms=norms)
        if self._one_to_many is not None:
            # The explain event mirrors the CountingDistance exactly:
            # vectorized evaluation counts batch rows, the loop fallback
            # counts scalar calls.
            emit_charge(rows=int(rows.shape[0]))
            return np.asarray(self._one_to_many(q, rows), dtype=np.float64)
        emit_charge(calls=int(rows.shape[0]))
        return np.array([self._func(q, row) for row in rows], dtype=np.float64)

    def pair_uncounted(self, u: np.ndarray, v: np.ndarray) -> float:
        """One distance evaluation outside the counting paths.

        Used by snapshot integrity probes: restoring an index must perform
        *zero* logical distance computations (the whole point of persisting
        the structure), yet a loaded file should still be cross-checked
        against the supplied metric — so the probe bypasses the
        :class:`~repro.distances.base.CountingDistance` wrapper.
        """
        return float(self._scalar_uncounted(u, v))

    @property
    def raw(self) -> Callable[[np.ndarray, np.ndarray], float]:
        """The wrapped scalar distance function."""
        return self._func

    @property
    def kernel(self):
        """The resolved batched kernel, or ``None``."""
        return self._kernel

    @property
    def block_rows(self) -> int | None:
        """Tile height of the blocked kernels (``None`` = unblocked)."""
        return self._block_rows

    def charge(self, *, calls: int = 0, rows: int = 0) -> None:
        """Charge logical evaluations computed outside the counted paths.

        Forwards to the wrapped :class:`CountingDistance` (if any) and the
        thread's active :class:`~repro.engine.trace.QueryTrace`, keeping
        the scalar/batched split intact.
        """
        if self._counter is not None and (calls or rows):
            self._counter.add_counts(calls=calls, batch_rows=rows)
        trace = current_trace()
        if trace is not None:
            trace.scalar_evaluations += calls
            trace.batched_evaluations += rows
        emit_charge(calls=calls, rows=rows)

    def attach_database(self, data: np.ndarray) -> None:
        """Precompute and cache the per-row norms for *data* (build time)."""
        self._norms_for(data)

    def _norms_for(self, data: np.ndarray) -> np.ndarray | None:
        """Cached kernel row norms for *data* (recomputed if the array changed).

        Identity-keyed: dynamic inserts replace the database array, which
        invalidates the cache wholesale — one cheap matrix product rebuilds
        it on the next bound query.
        """
        if self._kernel is None:
            return None
        if data is not self._norms_source:
            norms = self._kernel.row_norms(data)
            norms.setflags(write=False)
            self._norms = norms
            self._norms_source = data
        return self._norms

    def bind_query(self, query: np.ndarray, data: np.ndarray | None = None) -> "BoundQuery":
        """Bind *query* into a :class:`BoundQuery` evaluation context.

        With a kernel, this precomputes the per-query Gram terms (``qA``,
        ``qAq^T``) once; *data* enables the cached per-row norms so each
        candidate distance afterwards is O(n).
        """
        norms = self._norms_for(data) if data is not None else None
        ctx = self._kernel.bind(query) if self._kernel is not None else None
        return BoundQuery(self, query, ctx, norms)

    def pairwise(self, rows: np.ndarray, *, charge: bool = True) -> np.ndarray:
        """Symmetric distance matrix over *rows* (zero diagonal).

        Charges ``n(n-1)/2`` batched rows — the logical cost of evaluating
        each unordered pair once, exactly what the suffix one-to-many loops
        it replaces used to charge.  Pass ``charge=False`` when the caller
        replays a different logical pattern and charges it explicitly.
        """
        n = rows.shape[0]
        if self._kernel is not None:
            out = self._kernel.pairwise(rows)
        else:
            out = np.zeros((n, n), dtype=np.float64)
            if self._vector_uncounted is not None:
                for i in range(n - 1):
                    d = np.asarray(
                        self._vector_uncounted(rows[i], rows[i + 1 :]), dtype=np.float64
                    )
                    out[i, i + 1 :] = d
                    out[i + 1 :, i] = d
            else:
                for i in range(n - 1):
                    for j in range(i + 1, n):
                        d = float(self._scalar_uncounted(rows[i], rows[j]))
                        out[i, j] = d
                        out[j, i] = d
        if charge:
            self.charge(rows=n * (n - 1) // 2)
        return out

    def cross(
        self, rows_a: np.ndarray, rows_b: np.ndarray, *, charge: bool = True
    ) -> np.ndarray:
        """``(len(a), len(b))`` distance matrix between two row batches.

        Charges ``len(a) * len(b)`` batched rows unless ``charge=False``.
        """
        if self._kernel is not None:
            out = self._kernel.cross(rows_a, rows_b)
        elif self._vector_uncounted is not None:
            out = np.stack(
                [
                    np.asarray(self._vector_uncounted(row, rows_b), dtype=np.float64)
                    for row in rows_a
                ]
            )
        else:
            out = np.array(
                [
                    [float(self._scalar_uncounted(a, b)) for b in rows_b]
                    for a in rows_a
                ],
                dtype=np.float64,
            )
        if charge:
            self.charge(rows=rows_a.shape[0] * rows_b.shape[0])
        return out


class BoundQuery:
    """One query bound to a :class:`DistancePort` for repeated evaluation.

    Holds the per-query kernel context (``qA``/``qAq^T`` for QFD) and the
    database's cached row norms, so every candidate evaluation during a
    traversal is O(n).  Physical evaluation is batched; *charging* follows
    the traversal's logical access pattern through the explicit ``charge``
    arguments — ``"calls"`` for loops that used to make per-entry scalar
    calls, ``"rows"`` for sites that were already one-to-many batches, and
    ``None`` for speculative evaluation the caller replays and charges
    itself.  This is what keeps the paper's distance counts bit-identical
    under the kernel rewrite.
    """

    __slots__ = ("_port", "_query", "_ctx", "_norms")

    def __init__(
        self,
        port: DistancePort,
        query: np.ndarray,
        ctx,
        norms: np.ndarray | None,
    ) -> None:
        self._port = port
        self._query = query
        self._ctx = ctx
        self._norms = norms

    @property
    def query(self) -> np.ndarray:
        """The bound query vector."""
        return self._query

    def charge_calls(self, n: int) -> None:
        """Charge *n* logical scalar evaluations (replayed loops)."""
        if n:
            self._port.charge(calls=n)

    def charge_rows(self, n: int) -> None:
        """Charge *n* logical batched-row evaluations (replayed batches)."""
        if n:
            self._port.charge(rows=n)

    def compute_many(
        self, rows: np.ndarray, indices: np.ndarray | Sequence[int] | None = None
    ) -> np.ndarray:
        """Physically evaluate query-to-rows distances without charging.

        *indices* are the rows' database indices; when every index is valid
        the cached row norms are used (the O(n)-per-candidate hot path).
        """
        if rows.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        if self._ctx is not None:
            norms = None
            if self._norms is not None and indices is not None:
                idx = np.asarray(indices, dtype=np.intp)
                if idx.size == 0 or idx.min() >= 0:
                    norms = self._norms[idx]
            return self._ctx.many(rows, norms)
        vector = self._port._vector_uncounted
        if vector is not None:
            return np.asarray(vector(self._query, rows), dtype=np.float64)
        scalar = self._port._scalar_uncounted
        return np.array([scalar(self._query, row) for row in rows], dtype=np.float64)

    def many(
        self,
        rows: np.ndarray,
        indices: np.ndarray | Sequence[int] | None = None,
        *,
        charge: str | None = "rows",
    ) -> np.ndarray:
        """Query-to-rows distances, charged per *charge* category."""
        out = self.compute_many(rows, indices)
        n = int(out.shape[0])
        if n and charge == "rows":
            self._port.charge(rows=n)
        elif n and charge == "calls":
            self._port.charge(calls=n)
        return out

    def one(self, row: np.ndarray, index: int | None = None) -> float:
        """One query-to-row distance, charged as a scalar call."""
        self._port.charge(calls=1)
        if self._ctx is not None:
            norm = None
            if self._norms is not None and index is not None and index >= 0:
                norm = float(self._norms[index])
            return self._ctx.one(row, norm)
        return float(self._port._scalar_uncounted(self._query, row))


def neighbors_from_distances(
    distances: ArrayLike, indices: Sequence[int] | np.ndarray | None = None
) -> list[Neighbor]:
    """Sorted :class:`Neighbor` list from parallel distance/index arrays."""
    dist = np.asarray(distances, dtype=np.float64)
    if indices is None:
        idx: Sequence[int] = range(dist.shape[0])
    else:
        idx = list(indices)
    out = [Neighbor(float(d), int(i)) for d, i in zip(dist, idx)]
    out.sort()
    return out


class AccessMethod(ABC):
    """Base class for all metric/spatial access methods.

    Subclasses receive the database and the distance at construction,
    perform any build work there (or via dynamic inserts), and implement
    :meth:`_range_search` / :meth:`_knn_search`.  Argument validation and
    result-ordering guarantees live here so every index behaves uniformly.
    """

    #: Whether this structure's build and search touch vector data only
    #: through the :class:`DistancePort` batch paths and per-row copies —
    #: the contract that lets a blocked port keep the database as a raw
    #: float32 memmap view instead of a heap-resident float64 copy.
    supports_out_of_core = False

    def __init__(self, database: ArrayLike, distance: DistancePort | Callable) -> None:
        port = distance if isinstance(distance, DistancePort) else DistancePort(distance)
        data = self._coerce_database(database, port)
        if data.shape[0] == 0:
            raise EmptyIndexError("cannot build an index over an empty database")
        self._data = data
        self._port = port
        # Row norms (vAv^T) for the whole store, computed once at build
        # time; bound queries reuse them for O(n)-per-candidate evaluation.
        self._port.attach_database(self._data)

    def _coerce_database(self, database: ArrayLike, port: DistancePort) -> np.ndarray:
        """The stored database array for *database*.

        Default: a validated float64 heap copy (`as_vector_batch`), the
        arithmetic every existing path is pinned to.  Under a blocked
        port, out-of-core-capable structures keep a dense float32/float64
        2-D array (typically an :class:`~repro.storage.mmap_store
        .MmapVectorStore` row view) as-is — zero copies; the blocked
        kernels upcast tile by tile.
        """
        if (
            port.block_rows is not None
            and type(self).supports_out_of_core
            and isinstance(database, np.ndarray)
            and database.ndim == 2
            and database.dtype in (np.float32, np.float64)
        ):
            return database
        return as_vector_batch(database, name="database")

    @property
    def database(self) -> np.ndarray:
        """The indexed ``(m, n)`` database (row order = object index)."""
        return self._data

    @property
    def size(self) -> int:
        """Number of indexed objects ``m``."""
        return self._data.shape[0]

    @property
    def dim(self) -> int:
        """Vector dimensionality ``n``."""
        return self._data.shape[1]

    @property
    def distance(self) -> DistancePort:
        """The distance port used for every evaluation."""
        return self._port

    def range_search(self, query: ArrayLike, radius: float) -> list[Neighbor]:
        """All objects within *radius* of *query*, sorted by distance."""
        q = as_vector(query, self.dim, name="query")
        if radius < 0.0:
            raise QueryError(f"radius must be non-negative, got {radius}")
        result = self._range_search(q, float(radius))
        result.sort()
        return result

    def knn_search(self, query: ArrayLike, k: int) -> list[Neighbor]:
        """The *k* nearest objects (fewer only if the database is smaller)."""
        q = as_vector(query, self.dim, name="query")
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        result = self._knn_search(q, min(k, self.size))
        result.sort()
        return result

    def range_search_batch(
        self,
        queries: ArrayLike,
        radius: float,
        *,
        executor: "str | BatchExecutor | None" = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        collector: "TraceCollector | None" = None,
    ) -> list[list[Neighbor]]:
        """Range queries for a whole batch, one result list per query.

        Results are bit-identical to looping :meth:`range_search`; the
        batch form validates once, lets structures with a vectorized
        batch hook amortize their scans, and can fan chunks out over a
        thread or process pool (see :mod:`repro.engine`).  Attach a
        :class:`~repro.engine.trace.TraceCollector` to receive one
        :class:`~repro.engine.trace.QueryTrace` per query.
        """
        from ..engine.batch import run_query_batch  # engine sits above mam

        return run_query_batch(
            self,
            "range",
            queries,
            float(radius),
            executor=executor,
            workers=workers,
            chunk_size=chunk_size,
            collector=collector,
        )

    def knn_search_batch(
        self,
        queries: ArrayLike,
        k: int,
        *,
        executor: "str | BatchExecutor | None" = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        collector: "TraceCollector | None" = None,
    ) -> list[list[Neighbor]]:
        """kNN for a whole batch of queries; see :meth:`range_search_batch`."""
        from ..engine.batch import run_query_batch  # engine sits above mam

        return run_query_batch(
            self,
            "knn",
            queries,
            k,
            executor=executor,
            workers=workers,
            chunk_size=chunk_size,
            collector=collector,
        )

    def _range_search_batch(
        self,
        queries: np.ndarray,
        radius: float,
        traces: "list[QueryTrace] | None" = None,
    ) -> list[list[Neighbor]]:
        """Chunk hook: already-validated queries, sorted per-query results.

        The default runs the single-query search per row under that
        query's trace; subclasses with genuinely vectorizable batch
        plans (sequential file, pivot table) override it.
        """
        out: list[list[Neighbor]] = []
        for pos in range(queries.shape[0]):
            trace = traces[pos] if traces is not None else None
            start = perf_counter()
            with activate_trace(trace):
                result = self._range_search(queries[pos], radius)
            result.sort()
            if trace is not None:
                trace.seconds += perf_counter() - start
                trace.results = len(result)
            out.append(result)
        return out

    def _knn_search_batch(
        self,
        queries: np.ndarray,
        k: int,
        traces: "list[QueryTrace] | None" = None,
    ) -> list[list[Neighbor]]:
        """Chunk hook for kNN batches (*k* already clamped); see above."""
        out: list[list[Neighbor]] = []
        for pos in range(queries.shape[0]):
            trace = traces[pos] if traces is not None else None
            start = perf_counter()
            with activate_trace(trace):
                result = self._knn_search(queries[pos], k)
            result.sort()
            if trace is not None:
                trace.seconds += perf_counter() - start
                trace.results = len(result)
            out.append(result)
        return out

    # ------------------------------------------------------------------
    # structural snapshots (persistence protocol)
    # ------------------------------------------------------------------

    def structural_state(self) -> dict[str, np.ndarray]:
        """Arrays describing the built structure, without the database.

        The returned dict holds only plain numeric/string numpy arrays —
        tree topology flattened to parallel index/float arrays, never
        vectors (recoverable from the database by object index) and never
        code objects — so :mod:`repro.persistence` can write it to a
        portable ``.npz`` archive.  Structures with no state beyond the
        stored rows (the sequential file) return an empty dict.
        """
        return {}

    @classmethod
    def from_state(
        cls,
        database: ArrayLike,
        distance: "DistancePort | Callable | None",
        state: dict[str, np.ndarray],
    ) -> "AccessMethod":
        """Reassemble an index from *database* plus a structural state.

        The inverse of :meth:`structural_state`: performs **zero** distance
        evaluations — every derived attribute is rebuilt from the stored
        arrays, never recomputed through the metric.  The caller is
        responsible for passing the same distance function the structure
        was built with (SAMs may pass ``None`` to rebuild their default
        Minkowski distance).
        """
        instance = cls.__new__(cls)
        instance._init_restore(database, distance, dict(state))
        return instance

    def _init_restore(
        self,
        database: ArrayLike,
        distance: "DistancePort | Callable | None",
        state: dict[str, np.ndarray],
    ) -> None:
        """Initialization path used by :meth:`from_state`.

        Subclasses whose constructor needs state *before* the base
        initialization (e.g. SAMs building their default distance from the
        stored Minkowski order) override this; everyone else just gets
        ``__init__``-equivalent base setup followed by
        :meth:`_restore_state`.
        """
        if distance is None:
            raise StorageError(
                f"{type(self).__name__} needs the distance function it was "
                "built with to restore a snapshot"
            )
        AccessMethod.__init__(self, database, distance)
        self._restore_state(state)

    def _restore_state(self, state: dict[str, np.ndarray]) -> None:
        """Subclass hook rebuilding structure attributes from state arrays.

        Implementations pop the keys they own (via :func:`state_array` and
        friends) and finish with ``super()._restore_state(state)``, which
        rejects leftovers — a snapshot written by a different method or
        format version fails here instead of silently dropping data.
        """
        if state:
            raise StorageError(
                f"unexpected snapshot state keys for {type(self).__name__}: "
                f"{sorted(state)}"
            )

    def _verify_state_probe(self) -> None:
        """Cheap integrity probe of a restored structure (load-time check).

        Re-evaluates a sampled stored bound through
        :meth:`DistancePort.pair_uncounted` — keeping the zero-evaluation
        guarantee of :meth:`from_state` — and raises
        :class:`~repro.exceptions.StorageError` when the supplied distance
        disagrees with the stored structure.  The base implementation does
        nothing; structures with re-checkable bounds override it.
        """

    @property
    def supports_inserts(self) -> bool:
        """Whether this structure implements the dynamic-insert hook."""
        return type(self)._register_insert is not AccessMethod._register_insert

    def insert(self, vector: ArrayLike) -> int:
        """Dynamically insert one object, returning its new index.

        The paper's Section 6: the QMap model "allows similarity searching
        in dynamically changing databases without any distortion" — unlike
        the database-dependent SVD/KLT reductions of Section 2.3.1, whose
        embeddings degrade as the database drifts.  Every access method in
        this library therefore supports dynamic inserts; structures
        designed around static builds (vp-tree, GNAT, VA-file) absorb new
        objects into existing regions, which keeps queries exact at the
        cost of gradually looser partitions.

        The operation is atomic with respect to the stored database: if
        the structure does not support inserts, or its insert hook fails
        partway, the appended row is rolled back so ``size`` and queries
        are exactly as before the call.
        """
        v = as_vector(vector, self.dim, name="vector")
        if not self.supports_inserts:
            raise IndexStateError(
                f"{type(self).__name__} does not support dynamic inserts"
            )
        if isinstance(self._data, np.memmap) or self._data.dtype != np.float64:
            # vstack over an out-of-core store would materialize the
            # whole database on the heap — exactly what the mmap path
            # exists to avoid.  Out-of-core indexes are static.
            raise IndexStateError(
                "out-of-core (memory-mapped) indexes are static; rebuild "
                "the index to add objects"
            )
        index = self.size
        previous = self._data
        self._data = np.vstack([previous, v.reshape(1, -1)])
        try:
            self._register_insert(index, self._data[index])
        except BaseException:
            self._data = previous
            raise
        return index

    def _register_insert(self, index: int, vector: np.ndarray) -> None:
        """Subclass hook updating the structure for a freshly stored row."""
        raise IndexStateError(
            f"{type(self).__name__} does not support dynamic inserts"
        )

    @abstractmethod
    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        """Subclass hook; may return results unsorted."""

    @abstractmethod
    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        """Subclass hook; may return results unsorted."""


class NodeBatchedSearchMixin:
    """Search plumbing for tree MAMs whose traversals use :class:`BoundQuery`.

    Subclasses implement ``_range_impl(bound, radius)`` and
    ``_knn_impl(bound, k)`` over a bound query; this mixin supplies the
    single-query hooks and *real* chunk hooks for the batch engine: every
    query of a chunk is bound up front, so the per-database row-norm cache
    is synchronized once and each query pays only its own ``qA`` setup.
    """

    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        bound = self._port.bind_query(query, self._data)
        return self._range_impl(bound, radius)

    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        bound = self._port.bind_query(query, self._data)
        return self._knn_impl(bound, k)

    def _range_impl(self, bound: BoundQuery, radius: float) -> list[Neighbor]:
        raise NotImplementedError

    def _knn_impl(self, bound: BoundQuery, k: int) -> list[Neighbor]:
        raise NotImplementedError

    def _range_search_batch(
        self,
        queries: np.ndarray,
        radius: float,
        traces: "list[QueryTrace] | None" = None,
    ) -> list[list[Neighbor]]:
        bounds = [
            self._port.bind_query(queries[pos], self._data)
            for pos in range(queries.shape[0])
        ]
        out: list[list[Neighbor]] = []
        for pos, bound in enumerate(bounds):
            trace = traces[pos] if traces is not None else None
            start = perf_counter()
            with activate_trace(trace):
                result = self._range_impl(bound, radius)
            result.sort()
            if trace is not None:
                trace.seconds += perf_counter() - start
                trace.results = len(result)
            out.append(result)
        return out

    def _knn_search_batch(
        self,
        queries: np.ndarray,
        k: int,
        traces: "list[QueryTrace] | None" = None,
    ) -> list[list[Neighbor]]:
        bounds = [
            self._port.bind_query(queries[pos], self._data)
            for pos in range(queries.shape[0])
        ]
        out: list[list[Neighbor]] = []
        for pos, bound in enumerate(bounds):
            trace = traces[pos] if traces is not None else None
            start = perf_counter()
            with activate_trace(trace):
                result = self._knn_impl(bound, k)
            result.sort()
            if trace is not None:
                trace.seconds += perf_counter() - start
                trace.results = len(result)
            out.append(result)
        return out


class _KnnHeap:
    """Bounded max-heap of the current k best neighbors.

    Shared helper for best-first kNN algorithms: keeps the k smallest
    distances seen, exposes the current pruning radius, and resolves
    distance ties by preferring smaller indices so results are
    deterministic.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        self._k = k
        # Max-heap via negated distance; tie-break prefers *larger* index
        # for eviction, i.e. keeps smaller indices.
        self._heap: list[tuple[float, int]] = []

    def offer(self, distance: float, index: int) -> None:
        """Consider an object for the top-k."""
        item = (-distance, -index)
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, item)
        elif item > self._heap[0]:
            heapq.heapreplace(self._heap, item)

    @property
    def radius(self) -> float:
        """Current kth-best distance (inf while the heap is not full)."""
        if len(self._heap) < self._k:
            return float("inf")
        return -self._heap[0][0]

    def neighbors(self) -> list[Neighbor]:
        """The collected neighbors, sorted."""
        out = [Neighbor(-d, -i) for d, i in self._heap]
        out.sort()
        return out

    def __len__(self) -> int:
        return len(self._heap)
