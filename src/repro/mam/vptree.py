"""The vantage-point tree (Yianilos/Uhlmann) — paper Section 2.2 names the
vp-tree among the representative MAMs able to index the QMap-transformed
space.

Each node picks a *vantage point*, computes the distances from it to the
remaining objects and splits them at the median ``mu``: the inside subtree
holds objects with ``d <= mu``, the outside subtree the rest.  Queries use
the ball-shell geometry to skip whole subtrees:

* inside subtree reachable only if ``d(q, vp) - radius <= mu``;
* outside subtree reachable only if ``d(q, vp) + radius >= mu``.

As everywhere in this library, every distance evaluation is charged to the
:class:`~repro.mam.base.DistancePort`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

import numpy as np

from .._typing import ArrayLike
from ..engine.trace import record_node_visit, record_pruned
from ..obs.events import (
    ROOT,
    emit_candidate_verify,
    emit_lb_check,
    emit_node_enter,
    emit_prune,
    emit_result_add,
)
from ..exceptions import QueryError, StorageError
from .base import (
    AccessMethod,
    BoundQuery,
    DistancePort,
    Neighbor,
    NodeBatchedSearchMixin,
    _KnnHeap,
    prune_slack,
    state_array,
    state_int,
)

__all__ = ["VPTree"]


class _VPNode:
    __slots__ = ("vp_index", "mu", "inside", "outside", "bucket")

    def __init__(self) -> None:
        self.vp_index = -1
        self.mu = 0.0
        self.inside: _VPNode | None = None
        self.outside: _VPNode | None = None
        self.bucket: list[int] | None = None


class VPTree(NodeBatchedSearchMixin, AccessMethod):
    """Vantage-point tree over a black-box metric.

    Parameters
    ----------
    database:
        ``(m, n)`` rows to index.
    distance:
        Black-box metric (port or plain callable).
    leaf_size:
        Node size below which objects are kept in a scanned bucket.
    rng:
        Randomness for vantage-point choice.
    """

    def __init__(
        self,
        database: ArrayLike,
        distance: DistancePort | Callable,
        *,
        leaf_size: int = 8,
        rng: np.random.Generator | None = None,
    ) -> None:
        if leaf_size < 1:
            raise QueryError(f"leaf_size must be >= 1, got {leaf_size}")
        super().__init__(database, distance)
        self._leaf_size = leaf_size
        self._rng = np.random.default_rng(0) if rng is None else rng
        self._root = self._build(list(range(self.size)))

    def _build(self, indices: list[int]) -> _VPNode:
        node = _VPNode()
        if len(indices) <= self._leaf_size:
            node.bucket = indices
            return node
        pick = int(self._rng.integers(0, len(indices)))
        node.vp_index = indices[pick]
        rest = indices[:pick] + indices[pick + 1 :]
        dists = self._port.many(self._data[node.vp_index], self._data[rest])
        node.mu = float(np.median(dists))
        inside = [i for i, d in zip(rest, dists) if d <= node.mu]
        outside = [i for i, d in zip(rest, dists) if d > node.mu]
        # A degenerate median (all distances equal) would recurse forever;
        # fall back to a bucket in that case.
        if not inside or not outside:
            node.vp_index = -1
            node.bucket = indices
            return node
        node.inside = self._build(inside)
        node.outside = self._build(outside)
        return node

    def _register_insert(self, index: int, vector: np.ndarray) -> None:
        """Route the new object down the existing ball shells to a bucket.

        Each node's invariant (inside: ``d <= mu``; outside: ``d > mu``)
        is preserved by descending on the vantage-point distance, so
        queries stay exact; repeated inserts merely grow the buckets.
        """
        node = self._root
        while node.bucket is None:
            d_vp = self._port.pair(vector, self._data[node.vp_index])
            node = node.inside if d_vp <= node.mu else node.outside  # type: ignore[assignment]
        node.bucket.append(index)

    def structural_state(self) -> dict[str, np.ndarray]:
        # Preorder node arrays; bucket contents are stored CSR-style
        # (per-node count plus one flat item array).
        is_bucket: list[int] = []
        vp: list[int] = []
        mu: list[float] = []
        inside: list[int] = []
        outside: list[int] = []
        bucket_count: list[int] = []
        bucket_items: list[int] = []

        def collect(node: _VPNode) -> int:
            node_id = len(is_bucket)
            is_bucket.append(1 if node.bucket is not None else 0)
            vp.append(node.vp_index)
            mu.append(node.mu)
            inside.append(-1)
            outside.append(-1)
            if node.bucket is not None:
                bucket_count.append(len(node.bucket))
                bucket_items.extend(node.bucket)
            else:
                bucket_count.append(0)
                inside[node_id] = collect(node.inside)  # type: ignore[arg-type]
                outside[node_id] = collect(node.outside)  # type: ignore[arg-type]
            return node_id

        collect(self._root)
        return {
            "node_is_bucket": np.asarray(is_bucket, dtype=np.uint8),
            "node_vp": np.asarray(vp, dtype=np.int64),
            "node_mu": np.asarray(mu, dtype=np.float64),
            "node_inside": np.asarray(inside, dtype=np.int64),
            "node_outside": np.asarray(outside, dtype=np.int64),
            "bucket_count": np.asarray(bucket_count, dtype=np.int64),
            "bucket_items": np.asarray(bucket_items, dtype=np.int64),
            "leaf_size": np.int64(self._leaf_size),
        }

    def _restore_state(self, state: dict[str, np.ndarray]) -> None:
        is_bucket = state_array(state, "node_is_bucket")
        vp = state_array(state, "node_vp", dtype=np.int64)
        mu = state_array(state, "node_mu", dtype=np.float64)
        inside = state_array(state, "node_inside", dtype=np.int64)
        outside = state_array(state, "node_outside", dtype=np.int64)
        bucket_count = state_array(state, "bucket_count", dtype=np.int64)
        bucket_items = state_array(state, "bucket_items", dtype=np.int64)
        leaf_size = state_int(state, "leaf_size")
        super()._restore_state(state)
        if leaf_size < 1:
            raise StorageError(f"leaf_size must be >= 1, got {leaf_size}")
        n = is_bucket.shape[0]
        if n < 1 or any(
            arr.shape[0] != n for arr in (vp, mu, inside, outside, bucket_count)
        ):
            raise StorageError("vp-tree snapshot: node arrays disagree")
        covered = sorted(
            [int(i) for i in bucket_items]
            + [int(i) for i in vp[is_bucket == 0]]
        )
        if covered != list(range(self.size)):
            raise StorageError(
                "vp-tree snapshot: vantage points and buckets do not "
                "partition the database"
            )
        offsets = np.concatenate(([0], np.cumsum(bucket_count)))
        nodes: list[_VPNode] = []
        child_seen = np.zeros(n, dtype=bool)
        for nid in range(n):
            node = _VPNode()
            node.vp_index = int(vp[nid])
            node.mu = float(mu[nid])
            if is_bucket[nid]:
                node.bucket = [
                    int(i) for i in bucket_items[offsets[nid] : offsets[nid + 1]]
                ]
            nodes.append(node)
        for nid in range(n):
            if is_bucket[nid]:
                continue
            for child in (int(inside[nid]), int(outside[nid])):
                # Preorder: children follow their parent; seen-once rules
                # out shared subtrees and cycles.
                if not nid < child < n or child_seen[child]:
                    raise StorageError(
                        f"vp-tree snapshot: invalid child link {child} "
                        f"from node {nid}"
                    )
                child_seen[child] = True
            nodes[nid].inside = nodes[int(inside[nid])]
            nodes[nid].outside = nodes[int(outside[nid])]
        if not child_seen[1:].all():
            raise StorageError("vp-tree snapshot: unreachable nodes")
        self._leaf_size = leaf_size
        self._rng = np.random.default_rng(0)
        self._root = nodes[0]

    def _verify_state_probe(self) -> None:
        # The inside subtree holds objects with d(vp, o) <= mu — descend
        # the inside spine to a bucket and check its first member.
        node = self._root
        if node.bucket is not None:
            return
        vp_index, mu = node.vp_index, node.mu
        probe_node = node.inside
        while probe_node.bucket is None:  # type: ignore[union-attr]
            probe_node = probe_node.inside  # type: ignore[union-attr]
        bucket = probe_node.bucket  # type: ignore[union-attr]
        member = bucket[0] if bucket else probe_node.vp_index  # type: ignore[union-attr]
        if member < 0:
            return
        probe = self._port.pair_uncounted(
            self._data[vp_index], self._data[member]
        )
        if probe > mu * (1.0 + 1e-9) + 1e-9:
            raise StorageError(
                "supplied distance disagrees with the stored ball shells "
                "(wrong metric or wrong matrix?)"
            )

    def _range_impl(self, bound: BoundQuery, radius: float) -> list[Neighbor]:
        out: list[Neighbor] = []
        stack: list[tuple[_VPNode, int]] = [(self._root, ROOT)]
        while stack:
            node, parent_tok = stack.pop()
            record_node_visit()
            if node.bucket is not None:
                tok = emit_node_enter(parent_tok, "bucket")
                dists = bound.many(self._data[node.bucket], node.bucket)
                for idx, dist in zip(node.bucket, dists):
                    emit_candidate_verify(tok, int(idx), float(dist))
                    if dist <= radius:
                        out.append(Neighbor(float(dist), int(idx)))
                        emit_result_add(tok, int(idx), float(dist))
                continue
            tok = emit_node_enter(parent_tok, "vantage")
            d_vp = bound.one(self._data[node.vp_index], node.vp_index)
            emit_candidate_verify(tok, node.vp_index, d_vp)
            if d_vp <= radius:
                out.append(Neighbor(float(d_vp), node.vp_index))
                emit_result_add(tok, node.vp_index, float(d_vp))
            # mu is a member's build-time distance (the median), so the
            # shell tests get an ulp-scale slack against kernel arithmetic.
            slack = prune_slack(d_vp, node.mu)
            if d_vp - radius - slack <= node.mu:
                emit_lb_check(
                    tok, d_vp - radius - slack, node.mu,
                    pruned=False, label="inside-shell",
                )
                stack.append((node.inside, tok))  # type: ignore[arg-type]
            else:
                record_pruned()
                emit_lb_check(
                    tok, d_vp - radius - slack, node.mu,
                    pruned=True, label="inside-shell",
                )
                emit_prune(tok, 1, "inside-shell")
            if d_vp + radius + slack >= node.mu:
                emit_lb_check(
                    tok, d_vp + radius + slack, node.mu,
                    pruned=False, label="outside-shell",
                )
                stack.append((node.outside, tok))  # type: ignore[arg-type]
            else:
                record_pruned()
                emit_lb_check(
                    tok, d_vp + radius + slack, node.mu,
                    pruned=True, label="outside-shell",
                )
                emit_prune(tok, 1, "outside-shell")
        return out

    def _knn_impl(self, bound: BoundQuery, k: int) -> list[Neighbor]:
        heap = _KnnHeap(k)
        counter = itertools.count()
        queue: list[tuple[float, int, _VPNode, int]] = [
            (0.0, next(counter), self._root, ROOT)
        ]
        while queue:
            dmin, _, node, parent_tok = heapq.heappop(queue)
            if dmin > heap.radius:
                break
            record_node_visit()
            if node.bucket is not None:
                tok = emit_node_enter(parent_tok, "bucket")
                dists = bound.many(self._data[node.bucket], node.bucket)
                for idx, dist in zip(node.bucket, dists):
                    emit_candidate_verify(tok, int(idx), float(dist))
                    heap.offer(float(dist), int(idx))
                continue
            tok = emit_node_enter(parent_tok, "vantage")
            d_vp = bound.one(self._data[node.vp_index], node.vp_index)
            emit_candidate_verify(tok, node.vp_index, d_vp)
            heap.offer(float(d_vp), node.vp_index)
            tau = heap.radius
            slack = prune_slack(d_vp, node.mu)
            inside_dmin = max(d_vp - node.mu - slack, 0.0)
            outside_dmin = max(node.mu - d_vp - slack, 0.0)
            if inside_dmin <= tau:
                emit_lb_check(tok, inside_dmin, tau, pruned=False, label="inside-shell")
                heapq.heappush(queue, (inside_dmin, next(counter), node.inside, tok))
            else:
                record_pruned()
                emit_lb_check(tok, inside_dmin, tau, pruned=True, label="inside-shell")
                emit_prune(tok, 1, "inside-shell")
            if outside_dmin <= tau:
                emit_lb_check(
                    tok, outside_dmin, tau, pruned=False, label="outside-shell"
                )
                heapq.heappush(queue, (outside_dmin, next(counter), node.outside, tok))
            else:
                record_pruned()
                emit_lb_check(
                    tok, outside_dmin, tau, pruned=True, label="outside-shell"
                )
                emit_prune(tok, 1, "outside-shell")
        return heap.neighbors()
