"""The vantage-point tree (Yianilos/Uhlmann) — paper Section 2.2 names the
vp-tree among the representative MAMs able to index the QMap-transformed
space.

Each node picks a *vantage point*, computes the distances from it to the
remaining objects and splits them at the median ``mu``: the inside subtree
holds objects with ``d <= mu``, the outside subtree the rest.  Queries use
the ball-shell geometry to skip whole subtrees:

* inside subtree reachable only if ``d(q, vp) - radius <= mu``;
* outside subtree reachable only if ``d(q, vp) + radius >= mu``.

As everywhere in this library, every distance evaluation is charged to the
:class:`~repro.mam.base.DistancePort`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

import numpy as np

from .._typing import ArrayLike
from ..exceptions import QueryError
from .base import (
    AccessMethod,
    BoundQuery,
    DistancePort,
    Neighbor,
    NodeBatchedSearchMixin,
    _KnnHeap,
    prune_slack,
)

__all__ = ["VPTree"]


class _VPNode:
    __slots__ = ("vp_index", "mu", "inside", "outside", "bucket")

    def __init__(self) -> None:
        self.vp_index = -1
        self.mu = 0.0
        self.inside: _VPNode | None = None
        self.outside: _VPNode | None = None
        self.bucket: list[int] | None = None


class VPTree(NodeBatchedSearchMixin, AccessMethod):
    """Vantage-point tree over a black-box metric.

    Parameters
    ----------
    database:
        ``(m, n)`` rows to index.
    distance:
        Black-box metric (port or plain callable).
    leaf_size:
        Node size below which objects are kept in a scanned bucket.
    rng:
        Randomness for vantage-point choice.
    """

    def __init__(
        self,
        database: ArrayLike,
        distance: DistancePort | Callable,
        *,
        leaf_size: int = 8,
        rng: np.random.Generator | None = None,
    ) -> None:
        if leaf_size < 1:
            raise QueryError(f"leaf_size must be >= 1, got {leaf_size}")
        super().__init__(database, distance)
        self._leaf_size = leaf_size
        self._rng = np.random.default_rng(0) if rng is None else rng
        self._root = self._build(list(range(self.size)))

    def _build(self, indices: list[int]) -> _VPNode:
        node = _VPNode()
        if len(indices) <= self._leaf_size:
            node.bucket = indices
            return node
        pick = int(self._rng.integers(0, len(indices)))
        node.vp_index = indices[pick]
        rest = indices[:pick] + indices[pick + 1 :]
        dists = self._port.many(self._data[node.vp_index], self._data[rest])
        node.mu = float(np.median(dists))
        inside = [i for i, d in zip(rest, dists) if d <= node.mu]
        outside = [i for i, d in zip(rest, dists) if d > node.mu]
        # A degenerate median (all distances equal) would recurse forever;
        # fall back to a bucket in that case.
        if not inside or not outside:
            node.vp_index = -1
            node.bucket = indices
            return node
        node.inside = self._build(inside)
        node.outside = self._build(outside)
        return node

    def _register_insert(self, index: int, vector: np.ndarray) -> None:
        """Route the new object down the existing ball shells to a bucket.

        Each node's invariant (inside: ``d <= mu``; outside: ``d > mu``)
        is preserved by descending on the vantage-point distance, so
        queries stay exact; repeated inserts merely grow the buckets.
        """
        node = self._root
        while node.bucket is None:
            d_vp = self._port.pair(vector, self._data[node.vp_index])
            node = node.inside if d_vp <= node.mu else node.outside  # type: ignore[assignment]
        node.bucket.append(index)

    def _range_impl(self, bound: BoundQuery, radius: float) -> list[Neighbor]:
        out: list[Neighbor] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.bucket is not None:
                dists = bound.many(self._data[node.bucket], node.bucket)
                for idx, dist in zip(node.bucket, dists):
                    if dist <= radius:
                        out.append(Neighbor(float(dist), int(idx)))
                continue
            d_vp = bound.one(self._data[node.vp_index], node.vp_index)
            if d_vp <= radius:
                out.append(Neighbor(float(d_vp), node.vp_index))
            # mu is a member's build-time distance (the median), so the
            # shell tests get an ulp-scale slack against kernel arithmetic.
            slack = prune_slack(d_vp, node.mu)
            if d_vp - radius - slack <= node.mu:
                stack.append(node.inside)  # type: ignore[arg-type]
            if d_vp + radius + slack >= node.mu:
                stack.append(node.outside)  # type: ignore[arg-type]
        return out

    def _knn_impl(self, bound: BoundQuery, k: int) -> list[Neighbor]:
        heap = _KnnHeap(k)
        counter = itertools.count()
        queue: list[tuple[float, int, _VPNode]] = [(0.0, next(counter), self._root)]
        while queue:
            dmin, _, node = heapq.heappop(queue)
            if dmin > heap.radius:
                break
            if node.bucket is not None:
                dists = bound.many(self._data[node.bucket], node.bucket)
                for idx, dist in zip(node.bucket, dists):
                    heap.offer(float(dist), int(idx))
                continue
            d_vp = bound.one(self._data[node.vp_index], node.vp_index)
            heap.offer(float(d_vp), node.vp_index)
            tau = heap.radius
            slack = prune_slack(d_vp, node.mu)
            inside_dmin = max(d_vp - node.mu - slack, 0.0)
            outside_dmin = max(node.mu - d_vp - slack, 0.0)
            if inside_dmin <= tau:
                heapq.heappush(queue, (inside_dmin, next(counter), node.inside))
            if outside_dmin <= tau:
                heapq.heappush(queue, (outside_dmin, next(counter), node.outside))
        return heap.neighbors()
