"""Pivot selection techniques (Bustos, Navarro & Chávez — paper reference [10]).

The pivot table of Section 4.2 first selects ``p`` pivots "based on a pivot
selection technique" over a database sample of size ``s``, spending ``c``
distance computations.  Three standard techniques are implemented:

* ``random`` — uniform sample, the zero-cost baseline;
* ``maxmin`` — incremental farthest-first: each new pivot maximizes its
  minimum distance to the pivots chosen so far (outlier pivots);
* ``spread`` — the Bustos et al. efficiency criterion: pick, from random
  candidate sets, the pivot maximizing the mean of the pivot-mapped L∞
  lower bound over sampled object pairs (maximizing the distances in the
  pivot space makes the filter tighter).

All techniques charge their distance evaluations to the supplied
:class:`~repro.mam.base.DistancePort`, so the indexing-cost experiments
(Table 1, Figure 3) account for selection exactly like the paper does.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import QueryError
from .base import DistancePort

__all__ = ["select_pivots", "PIVOT_METHODS"]

PIVOT_METHODS = ("random", "maxmin", "spread")


def _duplicates_row(data: np.ndarray, idx: int, chosen: list[int]) -> bool:
    """Whether row *idx* is byte-equal to an already chosen pivot row.

    Row equality implies zero distance under any metric, so checking the
    raw vectors costs no distance evaluations — crucial for keeping the
    ``random`` technique free of charges.
    """
    row = data[idx]
    return any(np.array_equal(row, data[c]) for c in chosen)


def _distinct_fallback(data: np.ndarray, pivots: list[int]) -> int:
    """First unused index whose row duplicates no chosen pivot.

    Databases with repeated vectors used to let two copies of the same
    vector become two pivots — a silently wasted pivot for the triangle
    bound, and a zero denominator ``d(p1, p2)`` for the Ptolemaic bound.
    Prefer a content-distinct row; only when every unused row coincides
    with a pivot does a duplicate get accepted, honoring the requested
    pivot count (the Ptolemaic kernel drops zero-distance pairs anyway).
    """
    m = data.shape[0]
    for i in range(m):
        if i not in pivots and not _duplicates_row(data, i, pivots):
            return i
    for i in range(m):
        if i not in pivots:
            return i
    raise QueryError("no unused pivot candidates remain")  # unreachable: p <= m


def _random_pivots(data: np.ndarray, p: int, rng: np.random.Generator) -> list[int]:
    draw = [int(i) for i in rng.choice(data.shape[0], size=p, replace=False)]
    pivots: list[int] = []
    for idx in draw:
        if not _duplicates_row(data, idx, pivots):
            pivots.append(idx)
    # Duplicate vectors drawn twice: top up with distinct unused rows so
    # the requested pivot count survives repeated-vector databases.
    while len(pivots) < p:
        pivots.append(_distinct_fallback(data, pivots))
    return pivots


def _maxmin_pivots(
    data: np.ndarray, p: int, port: DistancePort, rng: np.random.Generator
) -> list[int]:
    m = data.shape[0]
    pivots = [int(rng.integers(0, m))]
    min_dist = port.many(data[pivots[0]], data)
    while len(pivots) < p:
        candidate = int(np.argmax(min_dist))
        if candidate in pivots or min_dist[candidate] <= 0.0:
            # Every remaining object is at distance zero from a chosen
            # pivot (repeated vectors, or a degenerate semi-metric);
            # argmax would happily promote a duplicate.  Fall back to a
            # content-distinct unused row when one exists.
            candidate = _distinct_fallback(data, pivots)
        pivots.append(candidate)
        min_dist = np.minimum(min_dist, port.many(data[candidate], data))
    return pivots


def _spread_pivots(
    data: np.ndarray,
    p: int,
    port: DistancePort,
    rng: np.random.Generator,
    *,
    candidates: int = 8,
    pairs: int = 32,
) -> list[int]:
    m = data.shape[0]
    pair_idx = rng.integers(0, m, size=(pairs, 2))
    pivots: list[int] = []
    # Lower bound contributed so far for each evaluation pair.
    best_lb = np.zeros(pairs, dtype=np.float64)
    for _ in range(p):
        cand_pool = [int(c) for c in rng.choice(m, size=min(candidates, m), replace=False)
                     if c not in pivots and not _duplicates_row(data, int(c), pivots)]
        if not cand_pool:
            cand_pool = [_distinct_fallback(data, pivots)]
        best_candidate, best_gain = cand_pool[0], -1.0
        for cand in cand_pool:
            d_left = port.many(data[cand], data[pair_idx[:, 0]])
            d_right = port.many(data[cand], data[pair_idx[:, 1]])
            lb = np.maximum(best_lb, np.abs(d_left - d_right))
            gain = float(lb.mean())
            if gain > best_gain:
                best_candidate, best_gain, best_lb_candidate = cand, gain, lb
        pivots.append(int(best_candidate))
        best_lb = best_lb_candidate
    return pivots


def select_pivots(
    data: np.ndarray,
    p: int,
    port: DistancePort,
    *,
    method: str = "maxmin",
    sample_size: int | None = None,
    rng: np.random.Generator | None = None,
) -> list[int]:
    """Select ``p`` pivot indices from the rows of *data*.

    Parameters
    ----------
    data:
        The ``(m, n)`` database.
    p:
        Number of pivots; must satisfy ``1 <= p <= m``.
    port:
        Distance port charged for every selection-time evaluation.
    method:
        One of :data:`PIVOT_METHODS`.
    sample_size:
        Restrict selection to a random sample of this size (the paper's
        ``s``); ``None`` uses the whole database.
    rng:
        Randomness source; defaults to a fixed seed for reproducibility.
    """
    m = data.shape[0]
    if not 1 <= p <= m:
        raise QueryError(f"p must be in [1, {m}], got {p}")
    if method not in PIVOT_METHODS:
        raise QueryError(f"unknown pivot method {method!r}; choose from {PIVOT_METHODS}")
    rng = np.random.default_rng(0) if rng is None else rng

    if sample_size is not None and sample_size < m:
        if sample_size < p:
            raise QueryError(f"sample_size {sample_size} is smaller than p={p}")
        sample = rng.choice(m, size=sample_size, replace=False)
        subset = data[sample]
    else:
        # Whole-database selection: keep the stored array itself.  A
        # fancy-indexed copy would materialize a memory-mapped database
        # on the heap and, having a fresh identity, miss the port's
        # cached row norms on every selection scan.
        sample = np.arange(m)
        subset = data
    if method == "random":
        local = _random_pivots(subset, p, rng)
    elif method == "maxmin":
        local = _maxmin_pivots(subset, p, port, rng)
    else:
        local = _spread_pivots(subset, p, port, rng)
    return [int(sample[i]) for i in local]
