"""Disk-resident M-tree over the paged storage substrate.

"The M-tree is a dynamic index structure that provides a good performance
in the secondary memory (i.e., in database environments)" — paper
Section 4.3.  This module puts the library's M-tree there: every node is
serialized into one fixed-size page of a :class:`~repro.storage.PagedFile`
behind an LRU cache, so queries pay *page faults* in addition to distance
computations, exactly the two-component cost model of the paper's
experiments (and of the Section 5.3 cache discussion).

Node page layout (little-endian)::

    u8   is_leaf
    u32  n_entries
    per entry:
        i64  child_page (-1 for leaf entries)
        i64  object_index (-1 for routing entries)
        f64  radius
        f64  dist_to_parent
        f64  vector[dim]

Construction serializes a built in-memory :class:`~repro.mam.mtree.MTree`
(children before parents, so page ids resolve); queries then run purely
against pages — the in-memory tree is not retained.
"""

from __future__ import annotations

import heapq
import itertools
import struct
from typing import Callable

import numpy as np

from .._typing import ArrayLike
from ..engine.trace import record_node_visit, record_pruned
from ..obs.events import (
    ROOT,
    emit_candidate_verify,
    emit_lb_check,
    emit_node_enter,
    emit_prune,
    emit_result_add,
)
from ..exceptions import PageError, StorageError
from ..storage.cache import LRUPageCache
from ..storage.pages import PagedFile
from .base import (
    PRUNE_SLACK_REL,
    AccessMethod,
    BoundQuery,
    DistancePort,
    Neighbor,
    NodeBatchedSearchMixin,
    _KnnHeap,
    prune_slack,
    state_array,
    state_int,
)
from .mtree import MTree, _Node

__all__ = ["PagedMTree"]

_HEADER = struct.Struct("<BI")
_ENTRY_FIXED = struct.Struct("<qqdd")


class _PagedNode:
    """A node deserialized from a page."""

    __slots__ = ("is_leaf", "children", "indices", "radii", "dist_to_parent", "vectors")

    def __init__(
        self,
        is_leaf: bool,
        children: list[int],
        indices: list[int],
        radii: np.ndarray,
        dist_to_parent: np.ndarray,
        vectors: np.ndarray,
    ) -> None:
        self.is_leaf = is_leaf
        self.children = children
        self.indices = indices
        self.radii = radii
        self.dist_to_parent = dist_to_parent
        self.vectors = vectors


class PagedMTree(NodeBatchedSearchMixin, AccessMethod):
    """M-tree whose nodes live in fixed-size pages behind an LRU cache.

    Parameters
    ----------
    database:
        ``(m, n)`` rows to index.
    distance:
        Black-box metric (port or plain callable).
    capacity:
        Maximum entries per node; together with the dimensionality this
        determines the page size.
    cache_pages:
        LRU node-cache capacity (the paper's "fixed-size disk cache").
    path:
        Optional real file for the pages (in-memory by default).
    rng, split_policy, bulk_load:
        Forwarded to the in-memory build.
    """

    def __init__(
        self,
        database: ArrayLike,
        distance: DistancePort | Callable,
        *,
        capacity: int = 16,
        cache_pages: int = 32,
        path: str | None = None,
        split_policy: str = "mM_RAD",
        bulk_load: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(database, distance)
        tree = MTree(
            self._data,
            self._port,
            capacity=capacity,
            split_policy=split_policy,
            bulk_load=bulk_load,
            rng=rng,
        )
        self._capacity = capacity
        entry_size = _ENTRY_FIXED.size + self.dim * 8
        page_size = _HEADER.size + (capacity + 1) * entry_size
        self._file = PagedFile(max(page_size, 64), path=path)
        self._cache = LRUPageCache(self._file, cache_pages)
        self._root_page = self._persist(tree._root)

    @property
    def cache(self) -> LRUPageCache:
        """The node cache (hit/fault statistics)."""
        return self._cache

    @property
    def capacity(self) -> int:
        """Maximum entries per node."""
        return self._capacity

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------

    def _persist(self, node: _Node) -> int:
        """Write *node* (children first) and return its page id."""
        if len(node.entries) > self._capacity + 1:
            raise PageError(
                f"node with {len(node.entries)} entries exceeds the page "
                f"layout capacity {self._capacity + 1}"
            )
        parts = [_HEADER.pack(1 if node.is_leaf else 0, len(node.entries))]
        for entry in node.entries:
            child_page = -1 if entry.subtree is None else self._persist(entry.subtree)
            parts.append(
                _ENTRY_FIXED.pack(
                    child_page, entry.index, entry.radius, entry.dist_to_parent
                )
            )
            parts.append(np.ascontiguousarray(entry.vector, dtype="<f8").tobytes())
        page_id = self._cache.allocate()
        self._cache.write_page(page_id, b"".join(parts))
        return page_id

    def _load(self, page_id: int) -> _PagedNode:
        payload = self._cache.read_page(page_id)
        is_leaf, n_entries = _HEADER.unpack_from(payload, 0)
        offset = _HEADER.size
        children: list[int] = []
        indices: list[int] = []
        radii = np.empty(n_entries)
        dist_to_parent = np.empty(n_entries)
        vectors = np.empty((n_entries, self.dim))
        vec_bytes = self.dim * 8
        for pos in range(n_entries):
            child_page, obj_index, radius, d_parent = _ENTRY_FIXED.unpack_from(
                payload, offset
            )
            offset += _ENTRY_FIXED.size
            vectors[pos] = np.frombuffer(payload, dtype="<f8", count=self.dim, offset=offset)
            offset += vec_bytes
            children.append(child_page)
            indices.append(obj_index)
            radii[pos] = radius
            dist_to_parent[pos] = d_parent
        return _PagedNode(bool(is_leaf), children, indices, radii, dist_to_parent, vectors)

    def _write_node(
        self,
        page_id: int,
        is_leaf: bool,
        children: list[int],
        indices: list[int],
        radii: list[float],
        dist_to_parent: list[float],
        vectors: np.ndarray,
    ) -> None:
        """Serialize a node back into its page."""
        n_entries = len(indices)
        if n_entries > self._capacity + 1:
            raise PageError(
                f"node with {n_entries} entries exceeds the page layout "
                f"capacity {self._capacity + 1}"
            )
        parts = [_HEADER.pack(1 if is_leaf else 0, n_entries)]
        for pos in range(n_entries):
            parts.append(
                _ENTRY_FIXED.pack(
                    children[pos], indices[pos], radii[pos], dist_to_parent[pos]
                )
            )
            parts.append(np.ascontiguousarray(vectors[pos], dtype="<f8").tobytes())
        self._cache.write_page(page_id, b"".join(parts))

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def structural_state(self) -> dict[str, np.ndarray]:
        # The page image *is* the structure: dump every page verbatim.
        # Reads bypass the LRU cache so saving does not disturb the
        # hit/fault statistics the benchmarks report.
        n_pages = self._file.n_pages
        pages = np.empty((n_pages, self._file.page_size), dtype=np.uint8)
        for page_id in range(n_pages):
            pages[page_id] = np.frombuffer(
                self._file.read_page(page_id), dtype=np.uint8
            )
        return {
            "pages": pages,
            "root_page": np.int64(self._root_page),
            "capacity": np.int64(self._capacity),
            "cache_pages": np.int64(self._cache.capacity),
        }

    def _restore_state(self, state: dict[str, np.ndarray]) -> None:
        pages = state_array(state, "pages", dtype=np.uint8)
        root_page = state_int(state, "root_page")
        capacity = state_int(state, "capacity")
        cache_pages = state_int(state, "cache_pages")
        super()._restore_state(state)
        if pages.ndim != 2 or pages.shape[0] < 1:
            raise StorageError("paged M-tree snapshot: pages must be a 2-d array")
        entry_size = _ENTRY_FIXED.size + self.dim * 8
        expected = max(_HEADER.size + (capacity + 1) * entry_size, 64)
        if pages.shape[1] != expected:
            raise StorageError(
                f"paged M-tree snapshot: page size {pages.shape[1]} does not "
                f"match capacity {capacity} and dimension {self.dim} "
                f"(expected {expected})"
            )
        if not 0 <= root_page < pages.shape[0]:
            raise StorageError(
                f"paged M-tree snapshot: root page {root_page} out of range "
                f"[0, {pages.shape[0]})"
            )
        self._capacity = capacity
        self._file = PagedFile(expected)
        for row in pages:
            page_id = self._file.allocate()
            self._file.write_page(page_id, row.tobytes())
        self._file.stats.reset()
        self._cache = LRUPageCache(self._file, cache_pages)
        self._root_page = root_page

    def _verify_state_probe(self) -> None:
        # Same check as MTree: a child entry's stored parent distance must
        # be reproducible from the supplied metric.
        root = self._load(self._root_page)
        if root.is_leaf or not root.children:
            return
        child = self._load(root.children[0])
        if not child.indices:
            return
        probe = self._port.pair_uncounted(child.vectors[0], root.vectors[0])
        if not np.isclose(probe, child.dist_to_parent[0], rtol=1e-6, atol=1e-9):
            raise StorageError(
                "supplied distance disagrees with the stored parent distances "
                "(wrong metric or wrong matrix?)"
            )

    # ------------------------------------------------------------------
    # dynamic inserts (page-level, with mM_RAD splits)
    # ------------------------------------------------------------------

    def _register_insert(self, index: int, vector: np.ndarray) -> None:
        """Descend, append to the leaf page, split overflowing pages upward."""
        path: list[tuple[int, int]] = []  # (page_id, chosen entry position)
        page_id = self._root_page
        descent_dist = 0.0
        while True:
            node = self._load(page_id)
            if node.is_leaf:
                break
            dists = self._port.many(vector, node.vectors)
            keys = [
                (0.0, float(d)) if d <= node.radii[pos] else (float(d - node.radii[pos]), float(d))
                for pos, d in enumerate(dists)
            ]
            pos = min(range(len(keys)), key=keys.__getitem__)
            chosen_dist = keys[pos][1]
            if chosen_dist > node.radii[pos]:
                node.radii[pos] = chosen_dist
                self._write_node(
                    page_id,
                    node.is_leaf,
                    node.children,
                    node.indices,
                    list(node.radii),
                    list(node.dist_to_parent),
                    node.vectors,
                )
            path.append((page_id, pos))
            descent_dist = chosen_dist
            page_id = node.children[pos]

        leaf = self._load(page_id)
        children = leaf.children + [-1]
        indices = leaf.indices + [index]
        radii = list(leaf.radii) + [0.0]
        d_parent = list(leaf.dist_to_parent) + [descent_dist]
        vectors = np.vstack([leaf.vectors, vector.reshape(1, -1)])
        if len(indices) <= self._capacity:
            self._write_node(page_id, True, children, indices, radii, d_parent, vectors)
            return
        self._split_page(page_id, True, children, indices, radii, vectors, path)

    def _split_page(
        self,
        page_id: int,
        is_leaf: bool,
        children: list[int],
        indices: list[int],
        radii: list[float],
        vectors: np.ndarray,
        path: list[tuple[int, int]],
    ) -> None:
        """mM_RAD split of an overflowing page, propagating upward."""
        n = vectors.shape[0]
        pairwise = self._port.pairwise(vectors)
        subtree_radii = np.asarray(radii)
        best_pair, best_score = (0, 1), float("inf")
        for i in range(n):
            for j in range(i + 1, n):
                closer_to_i = pairwise[i] <= pairwise[j]
                r1 = float(np.max(np.where(closer_to_i, pairwise[i] + subtree_radii, 0.0)))
                r2 = float(np.max(np.where(closer_to_i, 0.0, pairwise[j] + subtree_radii)))
                if max(r1, r2) < best_score:
                    best_pair, best_score = (i, j), max(r1, r2)
        first, second = best_pair

        group1, group2 = [], []
        for pos in range(n):
            if pos == first:
                group1.append(pos)
            elif pos == second:
                group2.append(pos)
            elif pairwise[first, pos] <= pairwise[second, pos]:
                group1.append(pos)
            else:
                group2.append(pos)

        def write_group(target_page: int, members: list[int], promoted: int) -> float:
            cover = 0.0
            d_parent = []
            for pos in members:
                d = float(pairwise[promoted, pos])
                d_parent.append(d)
                cover = max(cover, d + radii[pos])
            self._write_node(
                target_page,
                is_leaf,
                [children[pos] for pos in members],
                [indices[pos] for pos in members],
                [radii[pos] for pos in members],
                d_parent,
                vectors[members],
            )
            return cover

        page2 = self._cache.allocate()
        radius1 = write_group(page_id, group1, first)
        radius2 = write_group(page2, group2, second)

        routing_vectors = np.vstack([vectors[first], vectors[second]])
        routing_radii = [radius1, radius2]
        routing_pages = [page_id, page2]

        # Routing entries keep the promoted object's database index so the
        # kernel layer can look up its cached row norm.
        routing_indices = [indices[first], indices[second]]

        if not path:
            new_root = self._cache.allocate()
            self._write_node(
                new_root,
                False,
                routing_pages,
                routing_indices,
                routing_radii,
                [0.0, 0.0],
                routing_vectors,
            )
            self._root_page = new_root
            return

        parent_page, entry_pos = path[-1]
        parent = self._load(parent_page)
        if len(path) >= 2:
            grand_page, grand_pos = path[-2]
            grand_vec = self._load(grand_page).vectors[grand_pos]
            d_parent_new = [
                self._port.pair(routing_vectors[0], grand_vec),
                self._port.pair(routing_vectors[1], grand_vec),
            ]
        else:
            d_parent_new = [0.0, 0.0]

        keep = [pos for pos in range(len(parent.indices)) if pos != entry_pos]
        p_children = [parent.children[pos] for pos in keep] + routing_pages
        p_indices = [parent.indices[pos] for pos in keep] + routing_indices
        p_radii = [float(parent.radii[pos]) for pos in keep] + routing_radii
        p_dparent = [float(parent.dist_to_parent[pos]) for pos in keep] + d_parent_new
        p_vectors = np.vstack([parent.vectors[keep], routing_vectors])
        if len(p_indices) <= self._capacity:
            self._write_node(
                parent_page, False, p_children, p_indices, p_radii, p_dparent, p_vectors
            )
            return
        self._split_page(
            parent_page, False, p_children, p_indices, p_radii, p_vectors, path[:-1]
        )

    # ------------------------------------------------------------------
    # queries (same algorithms as MTree, over paged nodes)
    # ------------------------------------------------------------------

    def _range_impl(self, bound: BoundQuery, radius: float) -> list[Neighbor]:
        out: list[Neighbor] = []
        stack: list[tuple[int, float | None, int]] = [(self._root_page, None, ROOT)]
        while stack:
            page_id, d_query_parent, parent_tok = stack.pop()
            node = self._load(page_id)
            record_node_visit()
            tok = emit_node_enter(
                parent_tok, f"page:{page_id}" if parent_tok >= 0 else "page"
            )
            n = len(node.indices)
            # Parent-distance pruning needs nothing computed inside this
            # node, so the survivors are evaluated with one batched call
            # (charged one logical scalar call each, like the old loop).
            if d_query_parent is None:
                alive = list(range(n))
            else:
                # Stored bounds are often exactly tight — same ulp-scale
                # pruning slack as MTree (vectorized over the page).
                slack = PRUNE_SLACK_REL * (
                    abs(d_query_parent) + np.abs(node.dist_to_parent)
                )
                lower = np.abs(d_query_parent - node.dist_to_parent) - node.radii - slack
                alive = [pos for pos in range(n) if lower[pos] <= radius]
                if tok >= 0:
                    for pos in range(n):
                        emit_lb_check(
                            tok, float(lower[pos]), radius,
                            pruned=lower[pos] > radius, label="parent-distance",
                        )
            if not node.is_leaf and len(alive) < n:
                record_pruned(n - len(alive))
                emit_prune(tok, n - len(alive), "parent-distance")
            if not alive:
                continue
            dists = bound.many(
                node.vectors[alive], [node.indices[pos] for pos in alive], charge="calls"
            )
            for d, pos in zip(dists, alive):
                dist = float(d)
                if node.is_leaf:
                    emit_candidate_verify(tok, node.indices[pos], dist)
                    if dist <= radius:
                        out.append(Neighbor(dist, node.indices[pos]))
                        emit_result_add(tok, node.indices[pos], dist)
                elif (
                    dist - prune_slack(dist, node.radii[pos])
                    <= radius + node.radii[pos]
                ):
                    emit_lb_check(
                        tok,
                        dist - prune_slack(dist, node.radii[pos]),
                        radius + node.radii[pos],
                        pruned=False, label="covering-radius",
                    )
                    stack.append((node.children[pos], dist, tok))
                else:
                    record_pruned()
                    emit_lb_check(
                        tok,
                        dist - prune_slack(dist, node.radii[pos]),
                        radius + node.radii[pos],
                        pruned=True, label="covering-radius",
                    )
                    emit_prune(tok, 1, "covering-radius")
        return out

    def _knn_impl(self, bound: BoundQuery, k: int) -> list[Neighbor]:
        heap = _KnnHeap(k)
        counter = itertools.count()
        queue: list[tuple[float, int, int, float | None, int]] = [
            (0.0, next(counter), self._root_page, None, ROOT)
        ]
        while queue:
            dmin, _, page_id, d_query_parent, parent_tok = heapq.heappop(queue)
            if dmin > heap.radius:
                break
            node = self._load(page_id)
            record_node_visit()
            tok = emit_node_enter(
                parent_tok, f"page:{page_id}" if parent_tok >= 0 else "page"
            )
            n = len(node.indices)
            if node.is_leaf:
                # Offers shrink the pruning radius mid-loop: evaluate the
                # whole page speculatively (uncharged), replay the skip
                # test sequentially, charge only consumed entries.
                dists = bound.compute_many(node.vectors, node.indices)
                for pos in range(n):
                    if d_query_parent is not None:
                        lower = (
                            abs(d_query_parent - node.dist_to_parent[pos])
                            - node.radii[pos]
                            - prune_slack(d_query_parent, node.dist_to_parent[pos])
                        )
                        if lower > heap.radius:
                            emit_lb_check(
                                tok, lower, heap.radius,
                                pruned=True, label="parent-distance",
                            )
                            continue
                        emit_lb_check(
                            tok, lower, heap.radius,
                            pruned=False, label="parent-distance",
                        )
                    bound.charge_calls(1)
                    emit_candidate_verify(tok, node.indices[pos], float(dists[pos]))
                    heap.offer(float(dists[pos]), node.indices[pos])
            else:
                # No offers while scanning an internal page — the pruning
                # radius is constant and the survivor set known up front.
                cutoff = heap.radius
                if d_query_parent is None:
                    alive = list(range(n))
                else:
                    slack = PRUNE_SLACK_REL * (
                        abs(d_query_parent) + np.abs(node.dist_to_parent)
                    )
                    lower = (
                        np.abs(d_query_parent - node.dist_to_parent)
                        - node.radii
                        - slack
                    )
                    alive = [pos for pos in range(n) if lower[pos] <= cutoff]
                    if tok >= 0:
                        for pos in range(n):
                            emit_lb_check(
                                tok, float(lower[pos]), cutoff,
                                pruned=lower[pos] > cutoff, label="parent-distance",
                            )
                if len(alive) < n:
                    record_pruned(n - len(alive))
                    emit_prune(tok, n - len(alive), "parent-distance")
                if not alive:
                    continue
                dists = bound.many(
                    node.vectors[alive],
                    [node.indices[pos] for pos in alive],
                    charge="calls",
                )
                for d, pos in zip(dists, alive):
                    dist = float(d)
                    child_dmin = max(
                        dist - node.radii[pos] - prune_slack(dist, node.radii[pos]),
                        0.0,
                    )
                    if child_dmin <= cutoff:
                        emit_lb_check(tok, child_dmin, cutoff, pruned=False, label="dmin")
                        heapq.heappush(
                            queue,
                            (child_dmin, next(counter), node.children[pos], dist, tok),
                        )
                    else:
                        record_pruned()
                        emit_lb_check(tok, child_dmin, cutoff, pruned=True, label="dmin")
                        emit_prune(tok, 1, "covering-radius")
        return heap.neighbors()

    def node_pages(self) -> int:
        """Number of node pages on disk."""
        return self._file.n_pages

    def close(self) -> None:
        """Release the backing paged file."""
        self._file.close()

    def __enter__(self) -> "PagedMTree":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
