"""The sequential file — the naïve referential MAM (paper Section 4.1).

A flat binary file built by appending inserted objects; every query scans
all ``m`` objects and computes ``d(q, o_i)`` regardless of selectivity.
"Although this kind of 'MAM' is not very smart, it is a baseline structure
that also can take advantage of the QMap model": under QFD each of the
``m`` distances costs O(n^2); after the QMap transform they cost O(n).

Two variants are provided:

* :class:`SequentialFile` — in-memory rows (the default everywhere).
* :class:`DiskSequentialFile` — rows behind the paged storage substrate,
  used by the disk-cache ablation (bench E_A4).
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Callable

import numpy as np

from .._typing import ArrayLike
from ..engine.trace import activate_trace, record_candidates
from ..obs.events import (
    ROOT,
    emit_candidate_verify,
    emit_node_enter,
    emit_result_add,
    events_enabled,
)
from ..storage.vector_store import VectorStore
from .base import (
    AccessMethod,
    DistancePort,
    Neighbor,
    _KnnHeap,
    neighbors_from_distances,
    state_float,
    state_int,
    state_str,
)

if TYPE_CHECKING:
    from ..engine.trace import QueryTrace

__all__ = ["SequentialFile", "DiskSequentialFile"]


class SequentialFile(AccessMethod):
    """Flat in-memory sequential scan.

    Building is a no-op beyond storing the rows (``O(mn)`` time in the QFD
    model; the QMap model additionally pays the O(n^2)-per-vector transform
    — the single row of Table 1 where the QFD model wins).
    """

    #: A scan is one ``port.many`` over the database rows; with a blocked
    #: kernel that streams cache-sized tiles of a memory-mapped store.
    supports_out_of_core = True

    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        tok = emit_node_enter(ROOT, "scan")
        distances = self._port.many(query, self._data)
        record_candidates(self.size)
        hits = np.flatnonzero(distances <= radius)
        if tok >= 0:
            emit_candidate_verify(tok, -1, float("nan"), count=self.size)
            for idx in hits:
                emit_result_add(tok, int(idx), float(distances[idx]))
        return neighbors_from_distances(distances[hits], hits)

    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        tok = emit_node_enter(ROOT, "scan")
        distances = self._port.many(query, self._data)
        record_candidates(self.size)
        if tok >= 0:
            emit_candidate_verify(tok, -1, float("nan"), count=self.size)
        # argpartition gets the k smallest; explicit sort fixes tie order.
        order = np.argpartition(distances, k - 1)[:k]
        return neighbors_from_distances(distances[order], order)

    def _range_search_batch(
        self,
        queries: np.ndarray,
        radius: float,
        traces: "list[QueryTrace] | None" = None,
    ) -> list[list[Neighbor]]:
        """Batch scan: per-query one-to-many distances (bit-identical to
        the single-query path), with the threshold mask applied to the
        whole ``s x m`` distance matrix at once."""
        s = queries.shape[0]
        matrix = np.empty((s, self.size), dtype=np.float64)
        for pos in range(s):
            trace = traces[pos] if traces is not None else None
            start = perf_counter()
            with activate_trace(trace):
                matrix[pos] = self._port.many(queries[pos], self._data)
                record_candidates(self.size)
            if trace is not None:
                trace.seconds += perf_counter() - start
        within = matrix <= radius
        out: list[list[Neighbor]] = []
        for pos in range(s):
            start = perf_counter()
            hits = np.flatnonzero(within[pos])
            result = neighbors_from_distances(matrix[pos, hits], hits)
            out.append(result)
            trace = traces[pos] if traces is not None else None
            if trace is not None:
                trace.seconds += perf_counter() - start
                trace.results = len(result)
        return out

    def _register_insert(self, index: int, vector: np.ndarray) -> None:
        """Appending the row is the entire build — nothing else to update."""


class DiskSequentialFile(AccessMethod):
    """Sequential file on the paged-disk substrate.

    The scan walks the pages of a :class:`~repro.storage.VectorStore`
    through its fixed-size LRU cache, so query cost decomposes into
    distance computations plus physical page reads — exactly the two
    components whose interplay Section 5.3 discusses.

    Parameters
    ----------
    database:
        Rows to index (appended to the store at construction).
    distance:
        Black-box distance (port or plain callable).
    page_size, cache_pages, read_latency, dtype:
        Forwarded to the :class:`~repro.storage.VectorStore`.
    """

    def __init__(
        self,
        database: ArrayLike,
        distance: DistancePort | Callable,
        *,
        page_size: int = 4096,
        cache_pages: int = 64,
        read_latency: float = 0.0,
        dtype: str = "float64",
    ) -> None:
        super().__init__(database, distance)
        self._store_config = {
            "page_size": int(page_size),
            "cache_pages": int(cache_pages),
            "read_latency": float(read_latency),
            "dtype": str(np.dtype(dtype)),
        }
        self._build_store()
        # The in-memory copy is kept only for the AccessMethod API
        # (database property used by correctness tests); queries below go
        # through the store.

    def _build_store(self) -> None:
        cfg = self._store_config
        self._store = VectorStore(
            self.dim,
            page_size=cfg["page_size"],
            cache_pages=cfg["cache_pages"],
            read_latency=cfg["read_latency"],
            dtype=cfg["dtype"],
        )
        self._store.extend(self._data)

    def structural_state(self) -> dict[str, np.ndarray]:
        cfg = self._store_config
        return {
            "page_size": np.int64(cfg["page_size"]),
            "cache_pages": np.int64(cfg["cache_pages"]),
            "read_latency": np.float64(cfg["read_latency"]),
            "dtype": np.str_(cfg["dtype"]),
        }

    def _restore_state(self, state: dict[str, np.ndarray]) -> None:
        self._store_config = {
            "page_size": state_int(state, "page_size"),
            "cache_pages": state_int(state, "cache_pages"),
            "read_latency": state_float(state, "read_latency"),
            "dtype": state_str(state, "dtype"),
        }
        super()._restore_state(state)
        # Rebuilding the paged store is pure byte I/O — no distances.
        self._build_store()

    @property
    def store(self) -> VectorStore:
        """The paged vector store (for cache statistics)."""
        return self._store

    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        out: list[Neighbor] = []
        for first_index, rows in self._store.scan_pages():
            tok = emit_node_enter(ROOT, f"page@{first_index}" if events_enabled() else "")
            distances = self._port.many(query, rows)
            record_candidates(rows.shape[0])
            if tok >= 0:
                emit_candidate_verify(tok, -1, float("nan"), count=int(rows.shape[0]))
            for offset in np.flatnonzero(distances <= radius):
                neighbor = Neighbor(float(distances[offset]), first_index + int(offset))
                out.append(neighbor)
                emit_result_add(tok, neighbor.index, neighbor.distance)
        return out

    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        heap = _KnnHeap(k)
        for first_index, rows in self._store.scan_pages():
            tok = emit_node_enter(ROOT, f"page@{first_index}" if events_enabled() else "")
            distances = self._port.many(query, rows)
            record_candidates(rows.shape[0])
            if tok >= 0:
                emit_candidate_verify(tok, -1, float("nan"), count=int(rows.shape[0]))
            for offset, dist in enumerate(distances):
                heap.offer(float(dist), first_index + offset)
        return heap.neighbors()

    def _register_insert(self, index: int, vector: np.ndarray) -> None:
        """Append the record to the paged store (one page write-through)."""
        self._store.append(vector)
