"""The M-tree (Ciaccia, Patella & Zezula — paper reference [13], Section 4.3).

A dynamic, balanced, hierarchical metric index.  Selected objects act as
*routing objects* (local pivots) of ball-shaped regions; the remaining
objects are partitioned among the regions.  Insertion descends like a
B-tree (O(log m) distance computations per object plus splits, hence
O(m log m) to build), and queries traverse only the nodes whose ball
overlaps the query region.

Implemented features:

* dynamic inserts with the classic subtree-choice heuristic (prefer a
  region that needs no enlargement, minimum distance; otherwise minimum
  enlargement),
* node splits with promotion policies ``mM_RAD`` (minimize the larger of
  the two new covering radii — the policy recommended by the original
  paper) and ``random``, both with generalized-hyperplane partitioning,
* distance-to-parent pruning: the stored ``d(o, parent)`` values let both
  query algorithms discard entries *without* computing any distance, the
  key saving counted by the experiments,
* range search and best-first kNN search.

Every distance evaluation — during build and during queries — is charged
to the :class:`~repro.mam.base.DistancePort`, making the index usable for
the paper's cost accounting in both the QFD and the QMap model.
"""

from __future__ import annotations

import heapq
import itertools
import mmap as _mmap
from typing import Callable

import numpy as np

from .._typing import ArrayLike
from ..engine.executors import resolve_executor
from ..engine.trace import record_node_visit, record_pruned
from ..exceptions import QueryError, StorageError
from ..obs.events import (
    ROOT,
    emit_candidate_verify,
    emit_lb_check,
    emit_node_enter,
    emit_prune,
    emit_result_add,
)
from .base import (
    AccessMethod,
    BoundQuery,
    DistancePort,
    Neighbor,
    NodeBatchedSearchMixin,
    _KnnHeap,
    prune_slack,
    state_array,
    state_float,
    state_int,
    state_str,
)

__all__ = ["MTree", "SPLIT_POLICIES"]

SPLIT_POLICIES = ("mM_RAD", "random")

#: Cap on candidate promotion pairs examined by the mM_RAD policy; beyond
#: this many pairs a random sample is scored instead of all of them.
_MAX_PROMOTION_PAIRS = 64


class _Entry:
    """One node slot: a leaf object or a routing object with a subtree."""

    __slots__ = ("vector", "index", "radius", "dist_to_parent", "subtree")

    def __init__(
        self,
        vector: np.ndarray,
        *,
        index: int = -1,
        radius: float = 0.0,
        dist_to_parent: float = 0.0,
        subtree: "_Node | None" = None,
    ) -> None:
        self.vector = vector
        self.index = index
        self.radius = radius
        self.dist_to_parent = dist_to_parent
        self.subtree = subtree


class _Node:
    """An M-tree node holding up to ``capacity`` entries."""

    __slots__ = ("entries", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.entries: list[_Entry] = []
        self.is_leaf = is_leaf


class MTree(NodeBatchedSearchMixin, AccessMethod):
    """In-memory M-tree over a black-box metric.

    Parameters
    ----------
    database:
        ``(m, n)`` rows, inserted dynamically one by one (the paper builds
        its M-tree "by dynamic insertions in the same way as B-tree").
    distance:
        Black-box metric (port or plain callable).
    capacity:
        Maximum entries per node (>= 2).
    split_policy:
        ``"mM_RAD"`` (default) or ``"random"``.
    epsilon:
        Relative-error relaxation for kNN queries: with ``epsilon > 0``
        subtrees are pruned whenever they cannot contain an object closer
        than ``tau / (1 + epsilon)``, so every reported distance is within
        a factor ``(1 + epsilon)`` of the true kth distance while visiting
        fewer nodes — the classic approximate best-first trade-off
        (cf. the paper's reference [27]).  ``0`` (default) is exact.
    rng:
        Randomness for the random split policy and promotion sampling.
    bulk_workers:
        With ``bulk_load=True``, fan the top-level cluster builds out
        over this many workers through the engine's executors.  The
        resulting tree is deterministic for *any* worker count (each
        cluster gets its own spawned RNG stream), but differs from the
        sequential default (``None``), whose RNG stream is shared across
        clusters in build order.
    bulk_executor:
        Executor name for the parallel bulk path: ``"thread"`` (default)
        or ``"serial"``.  The process executor cannot share the node
        graph under assembly and is rejected.
    """

    #: Bulk loads gather rows per leaf / per seed set / per cross chunk,
    #: and entries keep row *views* of the store, so a memory-mapped
    #: database is never materialized on the heap.
    supports_out_of_core = True

    def __init__(
        self,
        database: ArrayLike,
        distance: DistancePort | Callable,
        *,
        capacity: int = 16,
        split_policy: str = "mM_RAD",
        bulk_load: bool = False,
        epsilon: float = 0.0,
        rng: np.random.Generator | None = None,
        bulk_workers: int | None = None,
        bulk_executor: str = "thread",
    ) -> None:
        if capacity < 2:
            raise QueryError(f"node capacity must be >= 2, got {capacity}")
        if split_policy not in SPLIT_POLICIES:
            raise QueryError(
                f"unknown split policy {split_policy!r}; choose from {SPLIT_POLICIES}"
            )
        if epsilon < 0.0:
            raise QueryError(f"epsilon must be non-negative, got {epsilon}")
        if bulk_workers is not None and bulk_workers < 1:
            raise QueryError(f"bulk_workers must be >= 1, got {bulk_workers}")
        if bulk_executor not in ("thread", "serial"):
            raise QueryError(
                "bulk_executor must be 'thread' or 'serial': worker "
                "processes cannot share the node graph under assembly"
            )
        super().__init__(database, distance)
        self._capacity = capacity
        self._split_policy = split_policy
        self._epsilon = epsilon
        self._rng = np.random.default_rng(0) if rng is None else rng
        # Entry vectors are per-row views of the database.  Views of an
        # np.memmap are np.memmap instances, each carrying an attribute
        # dict (_mmap/filename/offset/mode, ~1 KiB) — about 2 GiB of
        # pure bookkeeping across 1M leaves.  A plain-ndarray alias of
        # the same mapping makes them ordinary lightweight views; the
        # floats (and therefore every distance) are untouched.
        self._entry_rows = (
            self._data.view(np.ndarray)
            if isinstance(self._data, np.memmap)
            else self._data
        )
        if bulk_load:
            indices = np.arange(self.size, dtype=np.intp)
            self._root, _, _, _ = self._bulk_build(
                indices, workers=bulk_workers, executor=bulk_executor
            )
        else:
            self._root = _Node(is_leaf=True)
            for i, row in enumerate(self._entry_rows):
                self._insert(row, i)

    # ------------------------------------------------------------------
    # bulk loading (Ciaccia & Patella style, simplified)
    # ------------------------------------------------------------------

    def _medoid_distances(self, rows: np.ndarray) -> tuple[int, np.ndarray]:
        """Medoid position plus its distances to every row.

        One physical pairwise matrix replaces the per-candidate loop; the
        charge replays the loop's logical pattern exactly — ``n`` rows per
        scored candidate (``n^2``) plus ``n`` for re-evaluating the winner.
        """
        n = rows.shape[0]
        matrix = self._port.pairwise(rows, charge=False)
        medoid = int(np.argmin(matrix.max(axis=1, initial=0.0)))
        self._port.charge(rows=n * n + n)
        return medoid, matrix[medoid]

    def _cluster_owners(self, seed_rows: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Nearest-seed assignment for every object in *indices*.

        The seed-to-object cross matrix is the one place a bulk load
        touches the whole database at once, so it is computed in chunks
        of ``port.block_rows`` candidate rows (the whole set when
        unblocked): each chunk materializes only ``block_rows`` records
        from the store, keeping an out-of-core build's heap bounded.  One
        explicit charge replays the logical cost of the full cross —
        identical to the unchunked call it replaces.
        """
        n = int(indices.shape[0])
        n_seeds = int(seed_rows.shape[0])
        owner = np.empty(n, dtype=np.intp)
        chunk = self._port.block_rows or n
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            block = self._entry_rows[indices[start:stop]]
            dist_matrix = self._port.cross(seed_rows, block, charge=False)
            owner[start:stop] = np.argmin(dist_matrix, axis=0)
        self._port.charge(rows=n_seeds * n)
        return owner

    def _release_source_pages(self) -> None:
        """Advise the OS to evict the database mapping's resident pages.

        Only meaningful for memory-mapped databases: the pages are clean
        and file-backed, so the next access simply re-faults them — no
        data moves, no float changes, only the measured RSS.  Called
        between *top-level* cluster builds so the source residency stays
        near one cluster's slice instead of the whole file.
        """
        mapped = getattr(self._data, "_mmap", None)
        if mapped is not None and hasattr(_mmap, "MADV_DONTNEED"):
            mapped.madvise(_mmap.MADV_DONTNEED)

    def _build_children(
        self,
        groups: list[np.ndarray],
        rng: np.random.Generator,
        workers: int | None,
        executor: str,
        depth: int = 1,
    ) -> list[tuple["_Node", np.ndarray, float, int]]:
        """Build one subtree per index group, optionally in parallel.

        Sequential (``workers=None``) shares *rng* across groups in build
        order — byte-identical to the historical recursion.  With workers,
        each group gets its own spawned stream so the tree is
        deterministic for any worker count; the thread pool is safe here
        because the groups' node graphs are disjoint and the distance
        counter serializes its own bookkeeping.
        """
        if workers is None or len(groups) <= 1:
            children = []
            for group in groups:
                children.append(self._bulk_build(group, rng=rng, depth=depth + 1))
                if depth == 0:
                    self._release_source_pages()
            return children
        rngs = rng.spawn(len(groups))
        pool = resolve_executor(executor, workers=workers)
        children = pool.map_ordered(
            lambda pos: self._bulk_build(groups[pos], rng=rngs[pos], depth=depth + 1),
            range(len(groups)),
        )
        if depth == 0:
            self._release_source_pages()
        return children

    def _bulk_build(
        self,
        indices: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        workers: int | None = None,
        executor: str = "thread",
        depth: int = 0,
    ) -> tuple[_Node, np.ndarray, float, int]:
        """Recursive bulk build.

        Returns ``(node, routing_vector, covering_radius, routing_index)``
        for the built subtree.  Seeds are sampled, objects are clustered to
        their nearest seed, and subtrees are built per cluster — the
        classic recipe, trading strict height balance (which search
        correctness never needed) for tight clusters from the start.

        *indices* is an intp array into the database; rows are gathered
        from the store per leaf / per seed set / per cross chunk, never
        all at once, so a memory-mapped database is streamed rather than
        materialized.  *workers* fans the top-level clusters out across
        the engine's executors (recursive calls stay sequential — the
        top split alone exposes up to ``capacity``-way parallelism).
        """
        if rng is None:
            rng = self._rng
        n = int(indices.shape[0])
        if n <= self._capacity:
            rows = np.asarray(self._entry_rows[indices])
            node = _Node(is_leaf=True)
            medoid, dists = self._medoid_distances(rows)
            for pos, obj in enumerate(indices):
                obj = int(obj)
                node.entries.append(
                    _Entry(self._entry_rows[obj], index=obj, dist_to_parent=float(dists[pos]))
                )
            # .copy(): a bare rows[medoid] view would pin the whole
            # leaf gather (capacity x dim) alive for the tree's lifetime.
            return (
                node,
                rows[medoid].copy(),
                float(dists.max(initial=0.0)),
                int(indices[medoid]),
            )

        n_seeds = min(self._capacity, n)
        seed_positions = rng.choice(n, size=n_seeds, replace=False)
        seed_rows = np.asarray(self._entry_rows[indices[seed_positions]])
        owner = self._cluster_owners(seed_rows, indices)
        # Coincident seeds can dump every object into one cluster — no
        # progress, infinite recursion.  Chunk arbitrarily instead: with
        # (near-)identical objects any partition is equally tight.
        largest = int(np.bincount(owner, minlength=n_seeds).max())
        if largest == n:
            chunks = [
                indices[start : start + self._capacity]
                for start in range(0, n, self._capacity)
            ]
            node = _Node(is_leaf=False)
            child_indices = []
            for child, routing_vec, radius, routing_idx in self._build_children(
                chunks, rng, workers, executor, depth
            ):
                child_indices.append(routing_idx)
                node.entries.append(
                    _Entry(routing_vec, index=routing_idx, radius=radius, subtree=child)
                )
            routing_rows = np.array([e.vector for e in node.entries])
            medoid, dists = self._medoid_distances(routing_rows)
            radius = 0.0
            for entry, dist in zip(node.entries, dists):
                entry.dist_to_parent = float(dist)
                radius = max(radius, float(dist) + entry.radius)
            return node, routing_rows[medoid].copy(), radius, child_indices[medoid]
        # Every seed owns at least itself, but a cluster can still collapse
        # when seeds coincide; drop empty groups.
        groups = [
            members
            for group_id in range(n_seeds)
            if (members := indices[np.flatnonzero(owner == group_id)]).size
        ]
        node = _Node(is_leaf=False)
        child_indices = []
        for child, routing_vec, radius, routing_idx in self._build_children(
            groups, rng, workers, executor, depth
        ):
            child_indices.append(routing_idx)
            node.entries.append(
                _Entry(routing_vec, index=routing_idx, radius=radius, subtree=child)
            )
        if len(node.entries) == 1:
            # Degenerate clustering (all seeds equal): fall back to the
            # only child as this subtree.
            only = node.entries[0]
            return only.subtree, only.vector, only.radius, only.index  # type: ignore[return-value]
        routing_rows = np.array([e.vector for e in node.entries])
        medoid, dists = self._medoid_distances(routing_rows)
        radius = 0.0
        for entry, dist in zip(node.entries, dists):
            entry.dist_to_parent = float(dist)
            radius = max(radius, float(dist) + entry.radius)
        return node, routing_rows[medoid].copy(), radius, child_indices[medoid]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _insert(self, vector: np.ndarray, index: int) -> None:
        path: list[tuple[_Node, _Entry]] = []  # (node, chosen routing entry)
        node = self._root
        descent_distance = 0.0
        while not node.is_leaf:
            entry, descent_distance = self._choose_subtree(node, vector)
            path.append((node, entry))
            node = entry.subtree  # type: ignore[assignment]
        node.entries.append(
            _Entry(vector, index=index, dist_to_parent=descent_distance)
        )
        if len(node.entries) > self._capacity:
            self._split(node, path)

    def _choose_subtree(self, node: _Node, vector: np.ndarray) -> tuple[_Entry, float]:
        """Pick the routing entry to descend into, enlarging its radius if needed."""
        rows = np.array([e.vector for e in node.entries])
        dists = self._port.many(vector, rows)
        best: _Entry | None = None
        best_key = (float("inf"), float("inf"))
        for entry, dist in zip(node.entries, dists):
            if dist <= entry.radius:
                key = (0.0, float(dist))
            else:
                key = (float(dist - entry.radius), float(dist))
            if key < best_key:
                best_key, best = key, entry
        assert best is not None
        chosen_dist = best_key[1]
        if chosen_dist > best.radius:
            best.radius = chosen_dist
        return best, chosen_dist

    def _split(self, node: _Node, path: list[tuple[_Node, _Entry]]) -> None:
        entries = node.entries
        # One pairwise distance matrix serves both promotion scoring and the
        # final partition — the standard mM_RAD implementation trick that
        # keeps split cost at O(capacity^2) distance computations.
        pairwise = self._pairwise_matrix(entries)
        first, second = self._promote(entries, pairwise)
        group1, group2, radius1, radius2 = self._partition(entries, first, second, pairwise)

        node1 = _Node(node.is_leaf)
        node1.entries = group1
        node2 = _Node(node.is_leaf)
        node2.entries = group2
        routing1 = _Entry(
            entries[first].vector,
            index=entries[first].index,
            radius=radius1,
            subtree=node1,
        )
        routing2 = _Entry(
            entries[second].vector,
            index=entries[second].index,
            radius=radius2,
            subtree=node2,
        )

        if not path:
            new_root = _Node(is_leaf=False)
            new_root.entries = [routing1, routing2]
            self._root = new_root
            return
        parent, old_entry = path[-1]
        parent.entries.remove(old_entry)
        grandparent_vec = path[-2][1].vector if len(path) >= 2 else None
        for routing in (routing1, routing2):
            if grandparent_vec is not None:
                routing.dist_to_parent = self._port.pair(routing.vector, grandparent_vec)
            parent.entries.append(routing)
        if len(parent.entries) > self._capacity:
            self._split(parent, path[:-1])

    def _pairwise_matrix(self, entries: list[_Entry]) -> np.ndarray:
        """Symmetric distance matrix over the entry vectors (charged once)."""
        rows = np.array([e.vector for e in entries])
        return self._port.pairwise(rows)

    def _promote(self, entries: list[_Entry], pairwise: np.ndarray) -> tuple[int, int]:
        """Choose the two entries to promote as new routing objects."""
        n = len(entries)
        if self._split_policy == "random":
            first, second = self._rng.choice(n, size=2, replace=False)
            return int(first), int(second)
        # mM_RAD: score candidate pairs by the larger resulting covering
        # radius, reading all distances from the precomputed matrix.
        all_pairs = list(itertools.combinations(range(n), 2))
        if len(all_pairs) > _MAX_PROMOTION_PAIRS:
            picks = self._rng.choice(len(all_pairs), size=_MAX_PROMOTION_PAIRS, replace=False)
            pairs = [all_pairs[i] for i in picks]
        else:
            pairs = all_pairs
        subtree_radii = np.array([e.radius for e in entries])
        best_pair, best_score = pairs[0], float("inf")
        for i, j in pairs:
            closer_to_i = pairwise[i] <= pairwise[j]
            cover_i = pairwise[i] + subtree_radii
            cover_j = pairwise[j] + subtree_radii
            r1 = float(np.max(np.where(closer_to_i, cover_i, 0.0)))
            r2 = float(np.max(np.where(closer_to_i, 0.0, cover_j)))
            score = max(r1, r2)
            if score < best_score:
                best_pair, best_score = (i, j), score
        return best_pair

    def _partition(
        self, entries: list[_Entry], first: int, second: int, pairwise: np.ndarray
    ) -> tuple[list[_Entry], list[_Entry], float, float]:
        """Generalized-hyperplane partition around two promoted entries.

        Returns the two entry groups (with ``dist_to_parent`` updated to
        the respective promoted object) and the two covering radii.  For
        internal entries the covering radius accounts for the subtree
        radius: ``r = max(d + entry.radius)``.
        """
        d1 = pairwise[first]
        d2 = pairwise[second]
        group1: list[_Entry] = []
        group2: list[_Entry] = []
        radius1 = radius2 = 0.0
        for pos, entry in enumerate(entries):
            if pos == first:
                to_first = True
            elif pos == second:
                to_first = False
            else:
                to_first = d1[pos] <= d2[pos]
            if to_first:
                entry.dist_to_parent = float(d1[pos])
                group1.append(entry)
                radius1 = max(radius1, float(d1[pos]) + entry.radius)
            else:
                entry.dist_to_parent = float(d2[pos])
                group2.append(entry)
                radius2 = max(radius2, float(d2[pos]) + entry.radius)
        return group1, group2, radius1, radius2

    def _register_insert(self, index: int, vector: np.ndarray) -> None:
        """Dynamic insert — the M-tree's native operation (Section 4.3)."""
        self._insert(vector, index)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def structural_state(self) -> dict[str, np.ndarray]:
        # Preorder node walk; every entry vector equals self._data[index]
        # (both the dynamic and the bulk build promote actual database
        # objects), so the topology arrays below are the whole tree.
        nodes: list[_Node] = []

        def collect(node: _Node) -> None:
            nodes.append(node)
            if not node.is_leaf:
                for entry in node.entries:
                    collect(entry.subtree)  # type: ignore[arg-type]

        collect(self._root)
        ids = {id(node): nid for nid, node in enumerate(nodes)}
        is_leaf: list[int] = []
        entry_count: list[int] = []
        entry_index: list[int] = []
        entry_radius: list[float] = []
        entry_dtp: list[float] = []
        entry_child: list[int] = []
        for node in nodes:
            is_leaf.append(1 if node.is_leaf else 0)
            entry_count.append(len(node.entries))
            for entry in node.entries:
                entry_index.append(entry.index)
                entry_radius.append(entry.radius)
                entry_dtp.append(entry.dist_to_parent)
                entry_child.append(
                    -1 if entry.subtree is None else ids[id(entry.subtree)]
                )
        return {
            "node_is_leaf": np.asarray(is_leaf, dtype=np.uint8),
            "node_entry_count": np.asarray(entry_count, dtype=np.int64),
            "entry_index": np.asarray(entry_index, dtype=np.int64),
            "entry_radius": np.asarray(entry_radius, dtype=np.float64),
            "entry_dist_to_parent": np.asarray(entry_dtp, dtype=np.float64),
            "entry_child": np.asarray(entry_child, dtype=np.int64),
            "capacity": np.int64(self._capacity),
            "split_policy": np.str_(self._split_policy),
            "epsilon": np.float64(self._epsilon),
        }

    def _restore_state(self, state: dict[str, np.ndarray]) -> None:
        is_leaf = state_array(state, "node_is_leaf")
        entry_count = state_array(state, "node_entry_count", dtype=np.int64)
        entry_index = state_array(state, "entry_index", dtype=np.int64)
        entry_radius = state_array(state, "entry_radius", dtype=np.float64)
        entry_dtp = state_array(state, "entry_dist_to_parent", dtype=np.float64)
        entry_child = state_array(state, "entry_child", dtype=np.int64)
        capacity = state_int(state, "capacity")
        split_policy = state_str(state, "split_policy")
        epsilon = state_float(state, "epsilon")
        super()._restore_state(state)

        n_nodes = is_leaf.shape[0]
        if n_nodes < 1 or entry_count.shape[0] != n_nodes:
            raise StorageError("M-tree snapshot: node arrays disagree")
        n_entries = int(entry_count.sum())
        for arr, label in (
            (entry_index, "entry_index"),
            (entry_radius, "entry_radius"),
            (entry_dtp, "entry_dist_to_parent"),
            (entry_child, "entry_child"),
        ):
            if arr.shape[0] != n_entries:
                raise StorageError(
                    f"M-tree snapshot: {label} has {arr.shape[0]} rows, "
                    f"expected {n_entries}"
                )
        if capacity < 2:
            raise StorageError(f"node capacity must be >= 2, got {capacity}")
        if split_policy not in SPLIT_POLICIES:
            raise StorageError(
                f"unknown split policy {split_policy!r}; "
                f"choose from {SPLIT_POLICIES}"
            )
        if epsilon < 0.0:
            raise StorageError(f"epsilon must be non-negative, got {epsilon}")

        nodes = [_Node(bool(flag)) for flag in is_leaf]
        offsets = np.concatenate(([0], np.cumsum(entry_count)))
        child_seen = np.zeros(n_nodes, dtype=bool)
        for nid, node in enumerate(nodes):
            for pos in range(int(offsets[nid]), int(offsets[nid + 1])):
                idx = int(entry_index[pos])
                child = int(entry_child[pos])
                if not 0 <= idx < self.size:
                    raise StorageError(
                        f"M-tree snapshot: entry index {idx} out of range "
                        f"[0, {self.size})"
                    )
                if node.is_leaf:
                    if child != -1:
                        raise StorageError(
                            "M-tree snapshot: leaf entry points at a subtree"
                        )
                    subtree = None
                else:
                    # Preorder guarantees children come after their parent;
                    # the seen-once check rules out shared subtrees/cycles.
                    if not nid < child < n_nodes or child_seen[child]:
                        raise StorageError(
                            f"M-tree snapshot: invalid child link {child} "
                            f"from node {nid}"
                        )
                    child_seen[child] = True
                    subtree = nodes[child]
                node.entries.append(
                    _Entry(
                        self._data[idx],
                        index=idx,
                        radius=float(entry_radius[pos]),
                        dist_to_parent=float(entry_dtp[pos]),
                        subtree=subtree,
                    )
                )
        if not child_seen[1:].all():
            raise StorageError("M-tree snapshot: unreachable nodes")
        self._capacity = capacity
        self._split_policy = split_policy
        self._epsilon = epsilon
        self._rng = np.random.default_rng(0)
        self._root = nodes[0]

    def _verify_state_probe(self) -> None:
        # dist_to_parent of a child-node entry is d(entry, parent routing
        # object) — recomputable without touching the counter.  A leaf root
        # has no such pair (bulk-built leaves store medoid distances whose
        # medoid identity is not kept), so it is skipped.
        if self._root.is_leaf or not self._root.entries:
            return
        routing = self._root.entries[0]
        if routing.subtree is None or not routing.subtree.entries:
            return
        child_entry = routing.subtree.entries[0]
        probe = self._port.pair_uncounted(child_entry.vector, routing.vector)
        if not np.isclose(probe, child_entry.dist_to_parent, rtol=1e-6, atol=1e-9):
            raise StorageError(
                "supplied distance disagrees with the stored parent distances "
                "(wrong metric or wrong matrix?)"
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _range_impl(self, bound: BoundQuery, radius: float) -> list[Neighbor]:
        out: list[Neighbor] = []
        self._range_node(self._root, bound, radius, None, out, ROOT)
        return out

    def _range_node(
        self,
        node: _Node,
        bound: BoundQuery,
        radius: float,
        d_query_parent: float | None,
        out: list[Neighbor],
        parent_tok: int = ROOT,
    ) -> None:
        # Distance-to-parent pruning: triangle inequality gives
        # |d(q, parent) - d(o, parent)| <= d(q, o); if even that lower
        # bound exceeds the region, skip without computing d(q, o).  The
        # bound depends on nothing computed inside this node, so the whole
        # surviving slice is evaluated with one batched call — charged as
        # one logical scalar call per entry, like the loop it replaces.
        # Stored bounds (dist_to_parent, covering radii) are often exactly
        # tight, so prune tests against them get an ulp-scale slack.
        record_node_visit()
        tok = emit_node_enter(parent_tok, "leaf" if node.is_leaf else "internal")
        if d_query_parent is None:
            alive = node.entries
        else:
            alive = [
                e
                for e in node.entries
                if abs(d_query_parent - e.dist_to_parent)
                - prune_slack(d_query_parent, e.dist_to_parent)
                <= radius + e.radius
            ]
            if tok >= 0:
                # Explain replay of the comprehension above — emits the
                # exact two sides of each pruning comparison, computing
                # nothing the filter did not.
                for e in node.entries:
                    lhs = abs(d_query_parent - e.dist_to_parent) - prune_slack(
                        d_query_parent, e.dist_to_parent
                    )
                    rhs = radius + e.radius
                    emit_lb_check(
                        tok, lhs, rhs, pruned=lhs > rhs, label="parent-distance"
                    )
        if not node.is_leaf and len(alive) < len(node.entries):
            record_pruned(len(node.entries) - len(alive))
            emit_prune(tok, len(node.entries) - len(alive), "parent-distance")
        if not alive:
            return
        rows = np.array([e.vector for e in alive])
        dists = bound.many(rows, [e.index for e in alive], charge="calls")
        for pos, entry in enumerate(alive):
            dist = float(dists[pos])
            if node.is_leaf:
                emit_candidate_verify(tok, entry.index, dist)
                if dist <= radius:
                    out.append(Neighbor(dist, entry.index))
                    emit_result_add(tok, entry.index, dist)
            elif dist - prune_slack(dist, entry.radius) <= radius + entry.radius:
                emit_lb_check(
                    tok,
                    dist - prune_slack(dist, entry.radius),
                    radius + entry.radius,
                    pruned=False,
                    label="covering-radius",
                )
                self._range_node(entry.subtree, bound, radius, dist, out, tok)
            else:
                record_pruned()
                emit_lb_check(
                    tok,
                    dist - prune_slack(dist, entry.radius),
                    radius + entry.radius,
                    pruned=True,
                    label="covering-radius",
                )
                emit_prune(tok, 1, "covering-radius")

    def _knn_impl(self, bound: BoundQuery, k: int) -> list[Neighbor]:
        heap = _KnnHeap(k)
        # Best-first queue of (dmin, tiebreak, node, d(query, routing)).
        # With epsilon > 0 the effective pruning radius shrinks to
        # tau / (1 + epsilon): any skipped object is farther than that, so
        # reported distances stay within (1 + epsilon) of the true answer.
        relax = 1.0 + self._epsilon
        counter = itertools.count()
        queue: list[tuple[float, int, _Node, float | None, int]] = [
            (0.0, next(counter), self._root, None, ROOT)
        ]
        while queue:
            dmin, _, node, d_query_parent, parent_tok = heapq.heappop(queue)
            if dmin > heap.radius / relax:
                break
            record_node_visit()
            tok = emit_node_enter(parent_tok, "leaf" if node.is_leaf else "internal")
            if node.is_leaf:
                # Leaf offers shrink the pruning radius mid-loop, so the
                # skip test is replayed sequentially; distances are still
                # computed in one uncharged batch and each consumed entry
                # is charged as the scalar call the old loop made.
                entries = node.entries
                rows = np.array([e.vector for e in entries])
                dists = bound.compute_many(rows, [e.index for e in entries])
                for pos, entry in enumerate(entries):
                    if d_query_parent is not None:
                        lower = (
                            abs(d_query_parent - entry.dist_to_parent)
                            - entry.radius
                            - prune_slack(d_query_parent, entry.dist_to_parent)
                        )
                        if lower > heap.radius / relax:
                            emit_lb_check(
                                tok, lower, heap.radius / relax,
                                pruned=True, label="parent-distance",
                            )
                            continue
                        emit_lb_check(
                            tok, lower, heap.radius / relax,
                            pruned=False, label="parent-distance",
                        )
                    bound.charge_calls(1)
                    emit_candidate_verify(tok, entry.index, float(dists[pos]))
                    heap.offer(float(dists[pos]), entry.index)
            else:
                # No offers happen while scanning an internal node, so the
                # pruning radius is constant: the survivor set is known up
                # front and evaluated in one batch.
                cutoff = heap.radius / relax
                if d_query_parent is None:
                    alive = node.entries
                else:
                    alive = [
                        e
                        for e in node.entries
                        if abs(d_query_parent - e.dist_to_parent)
                        - e.radius
                        - prune_slack(d_query_parent, e.dist_to_parent)
                        <= cutoff
                    ]
                    if tok >= 0:
                        for e in node.entries:
                            lhs = (
                                abs(d_query_parent - e.dist_to_parent)
                                - e.radius
                                - prune_slack(d_query_parent, e.dist_to_parent)
                            )
                            emit_lb_check(
                                tok, lhs, cutoff,
                                pruned=lhs > cutoff, label="parent-distance",
                            )
                if len(alive) < len(node.entries):
                    record_pruned(len(node.entries) - len(alive))
                    emit_prune(tok, len(node.entries) - len(alive), "parent-distance")
                if not alive:
                    continue
                rows = np.array([e.vector for e in alive])
                dists = bound.many(rows, [e.index for e in alive], charge="calls")
                for pos, entry in enumerate(alive):
                    dist = float(dists[pos])
                    child_dmin = max(
                        dist - entry.radius - prune_slack(dist, entry.radius), 0.0
                    )
                    if child_dmin <= cutoff:
                        emit_lb_check(
                            tok, child_dmin, cutoff, pruned=False, label="dmin"
                        )
                        heapq.heappush(
                            queue, (child_dmin, next(counter), entry.subtree, dist, tok)
                        )
                    else:
                        record_pruned()
                        emit_lb_check(
                            tok, child_dmin, cutoff, pruned=True, label="dmin"
                        )
                        emit_prune(tok, 1, "covering-radius")
        return heap.neighbors()

    def nearest_iter(self, query: ArrayLike):
        """Lazily yield neighbors in increasing distance order.

        The Hjaltason-Samet incremental algorithm: one priority queue holds
        both unexplored subtrees (keyed by their dmin) and concrete objects
        (keyed by their exact distance); popping an object is proof that no
        unexplored subtree can contain anything closer.  Consuming ``k``
        items costs no more distance evaluations than a kNN for the same
        ``k`` — and the caller does not need to fix ``k`` in advance
        (classic use: distance-ordered cursors in query pipelines).
        """
        from .._typing import as_vector

        q = as_vector(query, self.dim, name="query")
        bound = self._port.bind_query(q, self._data)
        counter = itertools.count()
        # Three item kinds, all keyed by a LOWER BOUND on any object
        # distance reachable through them, so a popped exact object beats
        # everything still queued:
        #   "entry"  — unevaluated node slot; key from the parent-distance
        #              bound, exact distance deferred until popped;
        #   "node"   — subtree whose routing distance is known; key dmin;
        #   "object" — exact distance, ready to yield.
        queue: list[tuple[float, int, str, object, float | None]] = []

        def push_entries(node: _Node, d_query_routing: float | None) -> None:
            for entry in node.entries:
                if d_query_routing is None:
                    bound = 0.0
                else:
                    bound = max(
                        abs(d_query_routing - entry.dist_to_parent)
                        - entry.radius
                        - prune_slack(d_query_routing, entry.dist_to_parent),
                        0.0,
                    )
                heapq.heappush(
                    queue, (bound, next(counter), "entry", (entry, node.is_leaf), None)
                )

        push_entries(self._root, None)
        while queue:
            priority, _, kind, payload, stashed = heapq.heappop(queue)
            if kind == "object":
                yield Neighbor(priority, payload)  # type: ignore[arg-type]
            elif kind == "entry":
                entry, is_leaf_entry = payload  # type: ignore[misc]
                dist = bound.one(entry.vector, entry.index)
                if is_leaf_entry:
                    heapq.heappush(
                        queue, (float(dist), next(counter), "object", entry.index, None)
                    )
                else:
                    dmin = max(
                        float(dist) - entry.radius - prune_slack(dist, entry.radius),
                        0.0,
                    )
                    heapq.heappush(
                        queue, (dmin, next(counter), "node", entry.subtree, float(dist))
                    )
            else:
                push_entries(payload, stashed)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum entries per node."""
        return self._capacity

    @property
    def split_policy(self) -> str:
        """The promotion policy used for node splits."""
        return self._split_policy

    def height(self) -> int:
        """Tree height (1 for a single leaf root)."""
        h, node = 1, self._root
        while not node.is_leaf:
            h += 1
            node = node.entries[0].subtree  # type: ignore[assignment]
        return h

    def node_count(self) -> int:
        """Total number of nodes."""

        def count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + sum(count(e.subtree) for e in node.entries)  # type: ignore[arg-type]

        return count(self._root)

    def validate_invariants(self) -> None:
        """Verify covering-radius and dist-to-parent invariants (tests).

        Raises ``AssertionError`` on the first violation: every object in a
        routing entry's subtree must lie within its covering radius, and
        every stored ``dist_to_parent`` must equal the recomputed distance.
        """

        def walk(node: _Node, parent_vec: np.ndarray | None) -> list[np.ndarray]:
            vectors: list[np.ndarray] = []
            for entry in node.entries:
                if parent_vec is not None:
                    actual = self._port.raw(entry.vector, parent_vec)
                    assert np.isclose(actual, entry.dist_to_parent, atol=1e-8), (
                        f"dist_to_parent mismatch: {actual} != {entry.dist_to_parent}"
                    )
                if node.is_leaf:
                    vectors.append(entry.vector)
                else:
                    below = walk(entry.subtree, entry.vector)  # type: ignore[arg-type]
                    for vec in below:
                        dist = self._port.raw(vec, entry.vector)
                        assert dist <= entry.radius + 1e-8, (
                            f"covering radius violated: {dist} > {entry.radius}"
                        )
                    vectors.extend(below)
            return vectors

        walk(self._root, None)
