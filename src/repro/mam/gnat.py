"""GNAT — Geometric Near-neighbor Access Tree (Brin), paper Section 2.2.

Each node selects ``arity`` split points (farthest-first, like the original
paper) and assigns every remaining object to its closest split point.  For
each ordered pair of split points ``(i, j)`` the node stores the *range*
``[min, max]`` of ``d(p_i, o)`` over the objects of group ``j``.  At query
time, after computing ``d(q, p_i)``, any group ``j`` whose range cannot
intersect ``[d - r, d + r]`` is discarded without touching its objects.

kNN is implemented best-first over nodes with the group lower bounds as
priorities, shrinking the dynamic radius exactly like the M-tree search.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

import numpy as np

from .._typing import ArrayLike
from ..engine.trace import record_node_visit, record_pruned
from ..obs.events import (
    ROOT,
    emit_candidate_verify,
    emit_lb_check,
    emit_node_enter,
    emit_prune,
    emit_result_add,
)
from ..exceptions import QueryError, StorageError
from .base import (
    PRUNE_SLACK_REL,
    AccessMethod,
    BoundQuery,
    DistancePort,
    Neighbor,
    NodeBatchedSearchMixin,
    _KnnHeap,
    state_array,
    state_int,
)

__all__ = ["GNAT"]


class _GnatNode:
    __slots__ = ("split_indices", "children", "ranges", "bucket")

    def __init__(self) -> None:
        self.split_indices: list[int] = []
        self.children: list["_GnatNode"] = []
        # ranges[i][j] = (lo, hi) of d(split_i, members of child j).
        self.ranges: np.ndarray | None = None
        self.bucket: list[int] | None = None


class GNAT(NodeBatchedSearchMixin, AccessMethod):
    """Geometric near-neighbor access tree.

    Parameters
    ----------
    database:
        ``(m, n)`` rows to index.
    distance:
        Black-box metric (port or plain callable).
    arity:
        Split points per node.
    leaf_size:
        Threshold below which a node keeps a scanned bucket.
    rng:
        Randomness for the first split point.
    """

    def __init__(
        self,
        database: ArrayLike,
        distance: DistancePort | Callable,
        *,
        arity: int = 8,
        leaf_size: int = 16,
        rng: np.random.Generator | None = None,
    ) -> None:
        if arity < 2:
            raise QueryError(f"arity must be >= 2, got {arity}")
        if leaf_size < 1:
            raise QueryError(f"leaf_size must be >= 1, got {leaf_size}")
        super().__init__(database, distance)
        self._arity = arity
        self._leaf_size = leaf_size
        self._rng = np.random.default_rng(0) if rng is None else rng
        self._root = self._build(list(range(self.size)))

    def _build(self, indices: list[int]) -> _GnatNode:
        node = _GnatNode()
        if len(indices) <= max(self._leaf_size, self._arity):
            node.bucket = indices
            return node
        splits = self._pick_splits(indices)
        node.split_indices = splits
        rest = [i for i in indices if i not in set(splits)]
        rest_rows = self._data[rest]
        # d_matrix[s] = distances from split s to every remaining object.
        d_matrix = np.array(
            [self._port.many(self._data[s], rest_rows) for s in splits]
        )
        owner = np.argmin(d_matrix, axis=0)
        arity = len(splits)
        groups: list[list[int]] = [[] for _ in range(arity)]
        for pos, obj in enumerate(rest):
            groups[owner[pos]].append(obj)
        # Split points are reported at this node (queries always compute
        # d(q, p_i)), so children hold only their group members and the
        # ranges cover exactly those members.  Empty groups get the empty
        # range [inf, -inf], which no query interval can intersect.
        ranges = np.zeros((arity, arity, 2), dtype=np.float64)
        for j in range(arity):
            member_pos = np.flatnonzero(owner == j)
            for i in range(arity):
                d_members = d_matrix[i][member_pos]
                lo = float(d_members.min(initial=np.inf))
                hi = float(d_members.max(initial=-np.inf))
                ranges[i, j] = (lo, hi)
        node.ranges = ranges
        node.children = [self._build(groups[j]) for j in range(arity)]
        return node

    def _pick_splits(self, indices: list[int]) -> list[int]:
        """Farthest-first split points, as in Brin's construction."""
        arity = min(self._arity, len(indices))
        first = indices[int(self._rng.integers(0, len(indices)))]
        splits = [first]
        rows = self._data[indices]
        min_dist = self._port.many(self._data[first], rows)
        while len(splits) < arity:
            pick = int(np.argmax(min_dist))
            candidate = indices[pick]
            if candidate in splits:
                remaining = [i for i in indices if i not in splits]
                if not remaining:
                    break
                candidate = remaining[0]
            splits.append(candidate)
            min_dist = np.minimum(min_dist, self._port.many(self._data[candidate], rows))
        return splits

    def _register_insert(self, index: int, vector: np.ndarray) -> None:
        """Route the new object to its nearest split point's subtree.

        The ranges ``[min, max] of d(p_i, group_j)`` along the descent path
        are widened to cover the newcomer, so the pruning tests remain
        sound; queries stay exact.
        """
        node = self._root
        while node.bucket is None:
            dists = self._port.many(vector, self._data[node.split_indices])
            owner = int(np.argmin(dists))
            for i in range(len(node.split_indices)):
                lo, hi = node.ranges[i, owner]  # type: ignore[index]
                node.ranges[i, owner] = (  # type: ignore[index]
                    min(lo, float(dists[i])),
                    max(hi, float(dists[i])),
                )
            node = node.children[owner]
        node.bucket.append(index)

    def structural_state(self) -> dict[str, np.ndarray]:
        # Preorder nodes; buckets, split points, child links and the
        # per-node (arity, arity, 2) range tensors are stored CSR-style.
        is_bucket: list[int] = []
        bucket_count: list[int] = []
        bucket_items: list[int] = []
        split_count: list[int] = []
        split_items: list[int] = []
        child_items: list[int] = []
        ranges_parts: list[np.ndarray] = []

        def collect(node: _GnatNode) -> int:
            node_id = len(is_bucket)
            if node.bucket is not None:
                is_bucket.append(1)
                bucket_count.append(len(node.bucket))
                bucket_items.extend(node.bucket)
                split_count.append(0)
                return node_id
            is_bucket.append(0)
            bucket_count.append(0)
            split_count.append(len(node.split_indices))
            split_items.extend(node.split_indices)
            ranges_parts.append(np.asarray(node.ranges, dtype=np.float64).ravel())
            child_slots = [0] * len(node.children)
            slot = len(child_items)
            child_items.extend(child_slots)
            for j, child in enumerate(node.children):
                child_items[slot + j] = collect(child)
            return node_id

        collect(self._root)
        ranges_flat = (
            np.concatenate(ranges_parts)
            if ranges_parts
            else np.empty(0, dtype=np.float64)
        )
        return {
            "node_is_bucket": np.asarray(is_bucket, dtype=np.uint8),
            "bucket_count": np.asarray(bucket_count, dtype=np.int64),
            "bucket_items": np.asarray(bucket_items, dtype=np.int64),
            "split_count": np.asarray(split_count, dtype=np.int64),
            "split_items": np.asarray(split_items, dtype=np.int64),
            "child_items": np.asarray(child_items, dtype=np.int64),
            "ranges_flat": ranges_flat,
            "arity": np.int64(self._arity),
            "leaf_size": np.int64(self._leaf_size),
        }

    def _restore_state(self, state: dict[str, np.ndarray]) -> None:
        is_bucket = state_array(state, "node_is_bucket")
        bucket_count = state_array(state, "bucket_count", dtype=np.int64)
        bucket_items = state_array(state, "bucket_items", dtype=np.int64)
        split_count = state_array(state, "split_count", dtype=np.int64)
        split_items = state_array(state, "split_items", dtype=np.int64)
        child_items = state_array(state, "child_items", dtype=np.int64)
        ranges_flat = state_array(state, "ranges_flat", dtype=np.float64)
        arity = state_int(state, "arity")
        leaf_size = state_int(state, "leaf_size")
        super()._restore_state(state)
        if arity < 2:
            raise StorageError(f"arity must be >= 2, got {arity}")
        if leaf_size < 1:
            raise StorageError(f"leaf_size must be >= 1, got {leaf_size}")
        n = is_bucket.shape[0]
        if n < 1 or bucket_count.shape[0] != n or split_count.shape[0] != n:
            raise StorageError("GNAT snapshot: node arrays disagree")
        covered = sorted(int(i) for i in bucket_items) + sorted(
            int(i) for i in split_items
        )
        if sorted(covered) != list(range(self.size)):
            raise StorageError(
                "GNAT snapshot: split points and buckets do not partition "
                "the database"
            )
        bucket_offsets = np.concatenate(([0], np.cumsum(bucket_count)))
        split_offsets = np.concatenate(([0], np.cumsum(split_count)))
        range_sizes = np.where(is_bucket == 0, split_count * split_count * 2, 0)
        range_offsets = np.concatenate(([0], np.cumsum(range_sizes)))
        if ranges_flat.shape[0] != range_offsets[-1]:
            raise StorageError(
                f"GNAT snapshot: range tensor has {ranges_flat.shape[0]} "
                f"values, expected {int(range_offsets[-1])}"
            )
        if child_items.shape[0] != split_offsets[-1]:
            raise StorageError(
                "GNAT snapshot: child links do not match the split counts"
            )
        nodes: list[_GnatNode] = [_GnatNode() for _ in range(n)]
        child_seen = np.zeros(n, dtype=bool)
        for nid in range(n):
            node = nodes[nid]
            if is_bucket[nid]:
                node.bucket = [
                    int(i)
                    for i in bucket_items[
                        bucket_offsets[nid] : bucket_offsets[nid + 1]
                    ]
                ]
                continue
            a = int(split_count[nid])
            node.split_indices = [
                int(i)
                for i in split_items[split_offsets[nid] : split_offsets[nid + 1]]
            ]
            node.ranges = ranges_flat[
                range_offsets[nid] : range_offsets[nid + 1]
            ].reshape(a, a, 2).copy()
            for child in child_items[split_offsets[nid] : split_offsets[nid + 1]]:
                child = int(child)
                if not nid < child < n or child_seen[child]:
                    raise StorageError(
                        f"GNAT snapshot: invalid child link {child} "
                        f"from node {nid}"
                    )
                child_seen[child] = True
                node.children.append(nodes[child])
        if not child_seen[1:].all():
            raise StorageError("GNAT snapshot: unreachable nodes")
        self._arity = arity
        self._leaf_size = leaf_size
        self._rng = np.random.default_rng(0)
        self._root = nodes[0]

    def _verify_state_probe(self) -> None:
        # ranges[i, j] brackets d(split_i, members of group j): check one
        # stored bracket against a recomputed distance.
        node = self._root
        if node.bucket is not None:
            return
        assert node.ranges is not None
        finite = np.isfinite(node.ranges[0, :, 0])
        if not finite.any():
            return
        j = int(np.argmax(finite))
        child = node.children[j]
        member = (
            child.bucket[0]
            if child.bucket is not None and child.bucket
            else (child.split_indices[0] if child.split_indices else -1)
        )
        if member < 0:
            return
        lo, hi = float(node.ranges[0, j, 0]), float(node.ranges[0, j, 1])
        probe = self._port.pair_uncounted(
            self._data[node.split_indices[0]], self._data[member]
        )
        tol = 1e-6 * (abs(lo) + abs(hi)) + 1e-9
        if not lo - tol <= probe <= hi + tol:
            raise StorageError(
                "supplied distance disagrees with the stored split ranges "
                "(wrong metric or wrong matrix?)"
            )

    def _range_impl(self, bound: BoundQuery, radius: float) -> list[Neighbor]:
        out: list[Neighbor] = []
        stack: list[tuple[_GnatNode, int]] = [(self._root, ROOT)]
        while stack:
            node, parent_tok = stack.pop()
            record_node_visit()
            if node.bucket is not None:
                tok = emit_node_enter(parent_tok, "bucket")
                dists = bound.many(self._data[node.bucket], node.bucket)
                for idx, dist in zip(node.bucket, dists):
                    emit_candidate_verify(tok, int(idx), float(dist))
                    if dist <= radius:
                        out.append(Neighbor(float(dist), int(idx)))
                        emit_result_add(tok, int(idx), float(dist))
                continue
            tok = emit_node_enter(parent_tok, "splits")
            # Every split point is evaluated: splits are themselves
            # potential results, so an all-dead alive vector must not
            # suppress later split reports (stopping early could silently
            # drop a split lying inside the query ball).  One batch,
            # charged as per-split scalar calls, like the kNN loop.
            splits = node.split_indices
            split_dists = bound.many(self._data[splits], splits, charge="calls")
            alive = np.ones(len(node.children), dtype=bool)
            for i, split in enumerate(splits):
                d = float(split_dists[i])
                emit_candidate_verify(tok, int(split), d)
                if d <= radius:
                    out.append(Neighbor(d, int(split)))
                    emit_result_add(tok, int(split), d)
                lows = node.ranges[i, :, 0]  # type: ignore[index]
                highs = node.ranges[i, :, 1]  # type: ignore[index]
                # Ranges are member min/max distances — exactly tight — so
                # the intersection test gets an ulp-scale slack.  Empty
                # groups carry (inf, -inf); keep their slack finite so the
                # comparisons stay inf-arithmetic, not nan.
                span = np.where(np.isfinite(highs), np.abs(lows) + np.abs(highs), 0.0)
                slack = PRUNE_SLACK_REL * (abs(d) + span)
                alive &= (d - radius <= highs + slack) & (d + radius >= lows - slack)
            survivors = np.flatnonzero(alive)
            if tok >= 0:
                # Explain replay of the vectorized intersection: per child,
                # the tightest range lower bound vs the query radius.
                lower = np.zeros(len(node.children), dtype=np.float64)
                for i in range(len(splits)):
                    d = float(split_dists[i])
                    lows = node.ranges[i, :, 0]  # type: ignore[index]
                    highs = node.ranges[i, :, 1]  # type: ignore[index]
                    span = np.where(
                        np.isfinite(highs), np.abs(lows) + np.abs(highs), 0.0
                    )
                    slack = PRUNE_SLACK_REL * (abs(d) + span)
                    lower = np.maximum(lower, np.maximum(lows - d, d - highs) - slack)
                for j in range(len(node.children)):
                    emit_lb_check(
                        tok, max(float(lower[j]), 0.0), radius,
                        pruned=not bool(alive[j]), label="range-intersection",
                    )
            if len(survivors) < len(node.children):
                record_pruned(len(node.children) - len(survivors))
                emit_prune(
                    tok, len(node.children) - len(survivors), "range-intersection"
                )
            for j in survivors:
                stack.append((node.children[j], tok))
        return out

    def _knn_impl(self, bound: BoundQuery, k: int) -> list[Neighbor]:
        heap = _KnnHeap(k)
        counter = itertools.count()
        queue: list[tuple[float, int, _GnatNode, int]] = [
            (0.0, next(counter), self._root, ROOT)
        ]
        while queue:
            dmin, _, node, parent_tok = heapq.heappop(queue)
            if dmin > heap.radius:
                break
            record_node_visit()
            if node.bucket is not None:
                tok = emit_node_enter(parent_tok, "bucket")
                dists = bound.many(self._data[node.bucket], node.bucket)
                for idx, dist in zip(node.bucket, dists):
                    emit_candidate_verify(tok, int(idx), float(dist))
                    heap.offer(float(dist), int(idx))
                continue
            tok = emit_node_enter(parent_tok, "splits")
            # Unlike the range filter, this loop never stops early (the
            # pruning radius is only read after it), so every split point
            # is evaluated: one batch, charged as per-split scalar calls.
            splits = node.split_indices
            split_dists = bound.many(self._data[splits], splits, charge="calls")
            arity = len(node.children)
            lower = np.zeros(arity, dtype=np.float64)
            for i, split in enumerate(splits):
                d = float(split_dists[i])
                emit_candidate_verify(tok, int(split), d)
                heap.offer(d, int(split))
                lows = node.ranges[i, :, 0]  # type: ignore[index]
                highs = node.ranges[i, :, 1]  # type: ignore[index]
                span = np.where(np.isfinite(highs), np.abs(lows) + np.abs(highs), 0.0)
                slack = PRUNE_SLACK_REL * (abs(d) + span)
                lower = np.maximum(lower, np.maximum(lows - d, d - highs) - slack)
            tau = heap.radius
            for j in range(arity):
                child_dmin = max(float(lower[j]), 0.0)
                if child_dmin <= tau:
                    emit_lb_check(
                        tok, child_dmin, tau, pruned=False, label="range-intersection"
                    )
                    heapq.heappush(
                        queue, (child_dmin, next(counter), node.children[j], tok)
                    )
                else:
                    record_pruned()
                    emit_lb_check(
                        tok, child_dmin, tau, pruned=True, label="range-intersection"
                    )
                    emit_prune(tok, 1, "range-intersection")
        return heap.neighbors()
