"""Index structure diagnostics.

Operations teams (and ablation benches) want to see *why* an index prunes
well or badly: node counts, fill factors, covering-radius distributions,
bucket sizes.  :func:`describe_index` produces a uniform summary for every
structure in the library without touching their internals from user code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import QueryError
from .base import AccessMethod
from .gnat import GNAT
from .mindex import MIndex
from .mtree import MTree
from .pivot_table import PivotTable
from .sat import SATree
from .sequential import DiskSequentialFile, SequentialFile
from .vptree import VPTree

__all__ = ["IndexDescription", "describe_index"]


@dataclass(frozen=True)
class IndexDescription:
    """Uniform structural summary of an access method instance.

    Attributes
    ----------
    structure:
        Class name of the index.
    size:
        Indexed objects.
    nodes:
        Internal+leaf node count (1 for flat structures).
    height:
        Levels from root to deepest leaf (1 for flat structures).
    extra:
        Structure-specific numbers (fill factor, radii quantiles, ...).
    """

    structure: str
    size: int
    nodes: int
    height: int
    extra: dict[str, float] = field(default_factory=dict)


def _describe_mtree(tree: MTree) -> IndexDescription:
    radii: list[float] = []
    fills: list[int] = []

    def walk(node) -> None:
        fills.append(len(node.entries))
        for entry in node.entries:
            if entry.subtree is not None:
                radii.append(entry.radius)
                walk(entry.subtree)

    walk(tree._root)
    extra = {
        "mean_fill": float(np.mean(fills)),
        "capacity": float(tree.capacity),
        "fill_factor": float(np.mean(fills)) / tree.capacity,
    }
    if radii:
        extra["median_covering_radius"] = float(np.median(radii))
        extra["max_covering_radius"] = float(np.max(radii))
    return IndexDescription(
        structure="MTree",
        size=tree.size,
        nodes=tree.node_count(),
        height=tree.height(),
        extra=extra,
    )


def _describe_vptree(tree: VPTree) -> IndexDescription:
    buckets: list[int] = []
    nodes = 0
    max_depth = 0

    def walk(node, depth: int) -> None:
        nonlocal nodes, max_depth
        nodes += 1
        max_depth = max(max_depth, depth)
        if node.bucket is not None:
            buckets.append(len(node.bucket))
            return
        walk(node.inside, depth + 1)
        walk(node.outside, depth + 1)

    walk(tree._root, 1)
    return IndexDescription(
        structure="VPTree",
        size=tree.size,
        nodes=nodes,
        height=max_depth,
        extra={
            "buckets": float(len(buckets)),
            "mean_bucket": float(np.mean(buckets)) if buckets else 0.0,
        },
    )


def _describe_gnat(tree: GNAT) -> IndexDescription:
    buckets: list[int] = []
    nodes = 0
    max_depth = 0

    def walk(node, depth: int) -> None:
        nonlocal nodes, max_depth
        nodes += 1
        max_depth = max(max_depth, depth)
        if node.bucket is not None:
            buckets.append(len(node.bucket))
            return
        for child in node.children:
            walk(child, depth + 1)

    walk(tree._root, 1)
    return IndexDescription(
        structure="GNAT",
        size=tree.size,
        nodes=nodes,
        height=max_depth,
        extra={
            "buckets": float(len(buckets)),
            "mean_bucket": float(np.mean(buckets)) if buckets else 0.0,
        },
    )


def _describe_sat(tree: SATree) -> IndexDescription:
    nodes = 0
    fanouts: list[int] = []

    def walk(node) -> None:
        nonlocal nodes
        nodes += 1
        if node.children:
            fanouts.append(len(node.children))
            for child in node.children:
                walk(child)

    walk(tree._root)
    return IndexDescription(
        structure="SATree",
        size=tree.size,
        nodes=nodes,
        height=tree.height(),
        extra={"mean_fanout": float(np.mean(fanouts)) if fanouts else 0.0},
    )


def _describe_pivot_table(table: PivotTable) -> IndexDescription:
    return IndexDescription(
        structure="PivotTable",
        size=table.size,
        nodes=1,
        height=1,
        extra={
            "pivots": float(table.n_pivots),
            "table_megabytes": table.table.nbytes / 1e6,
        },
    )


def _describe_mindex(index: MIndex) -> IndexDescription:
    sizes = index.cluster_sizes()
    return IndexDescription(
        structure="MIndex",
        size=index.size,
        nodes=1,
        height=1,
        extra={
            "clusters": float(index.n_pivots),
            "largest_cluster": float(max(sizes)),
            "empty_clusters": float(sum(1 for s in sizes if s == 0)),
        },
    )


def describe_index(index: AccessMethod) -> IndexDescription:
    """Structural summary of any library access method."""
    if isinstance(index, MTree):
        return _describe_mtree(index)
    if isinstance(index, VPTree):
        return _describe_vptree(index)
    if isinstance(index, GNAT):
        return _describe_gnat(index)
    if isinstance(index, SATree):
        return _describe_sat(index)
    if isinstance(index, PivotTable):
        return _describe_pivot_table(index)
    if isinstance(index, MIndex):
        return _describe_mindex(index)
    if isinstance(index, (SequentialFile, DiskSequentialFile)):
        return IndexDescription(
            structure=type(index).__name__, size=index.size, nodes=1, height=1
        )
    # SAMs and future structures: generic fallback using optional height().
    height = index.height() if hasattr(index, "height") else 1
    if not isinstance(index, AccessMethod):
        raise QueryError(f"not an access method: {type(index).__name__}")
    return IndexDescription(
        structure=type(index).__name__, size=index.size, nodes=-1, height=height
    )
