"""Pivot tables (LAESA) — the flat distance-matrix MAM (paper Section 4.2).

A set of ``p`` pivots is selected from the database; every object ``o_i``
stores its distance vector ``(d(o_i, p_1), ..., d(o_i, p_p))``, and the
vectors form the ``m x p`` *pivot table*.  A range query ``(q, rad)``
computes the query's distance vector, filters out every object whose table
row falls outside the ``p``-dimensional hyper-cube of edge ``2 rad``
centered at the query row (the triangle-inequality lower bound
``|d(q,p_j) - d(o,p_j)| > rad`` for some ``j``), and verifies the ``x``
non-filtered candidates with real distance computations.

kNN processes candidates in ascending lower-bound order, shrinking the
dynamic radius as better neighbors arrive — once the lower bound of the
next candidate exceeds the current kth distance, the remainder is pruned
wholesale.

Beyond the paper: because QMap embeds the QFD isometrically into L2, the
QFD is a *Ptolemaic* metric, and Hetland's Ptolemaic pivot bound

    d(q, v) >= max over pivot pairs of
               |d(q,p1) d(v,p2) - d(q,p2) d(v,p1)| / d(p1, p2)

is often far tighter than the triangle bound.  ``bound="ptolemaic"``
switches the filter to it (paying ``p (p-1) / 2`` extra build-time
distances for the pivot-pair matrix), ``bound="best"`` takes the
pointwise maximum of both bounds, and ``bound="triangle"`` (default)
keeps the classic LAESA behaviour bit-for-bit.  Query-time charging is
identical in every mode: ``p`` pivot distances plus one evaluation per
verified candidate.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from .._typing import ArrayLike, as_vector
from ..distances.metric_checks import check_ptolemy_matrix
from ..engine.trace import activate_trace, record_candidates, record_filter
from ..exceptions import DimensionMismatchError, QueryError, StorageError
from ..kernels.ptolemaic import (
    ptolemaic_bound_matrix,
    ptolemaic_bounds,
    valid_pivot_pairs,
)
from ..obs.events import (
    ROOT,
    emit_candidate_verify,
    emit_lb_check,
    emit_node_enter,
    emit_result_add,
    events_enabled,
)
from .base import AccessMethod, DistancePort, Neighbor, _KnnHeap, state_array, state_str
from .pivots import select_pivots

if TYPE_CHECKING:
    from ..engine.trace import QueryTrace

__all__ = ["PivotTable", "BOUND_MODES"]

#: Lower-bound modes of :class:`PivotTable`.
BOUND_MODES = ("triangle", "ptolemaic", "best")

#: Event label of each mode's *operative* bound (the one that decides).
_BOUND_LABELS = {
    "triangle": "pivot-linf",
    "ptolemaic": "pivot-ptolemaic",
    "best": "pivot-best",
}


class PivotTable(AccessMethod):
    """LAESA-style pivot table.

    Parameters
    ----------
    database:
        ``(m, n)`` rows to index.
    distance:
        Black-box metric (port or plain callable).
    n_pivots:
        Number of pivots ``p``.
    pivot_method:
        Selection technique, see :mod:`repro.mam.pivots`.
    pivot_sample:
        Optional sample size ``s`` for selection.
    pivots:
        Explicit pivot indices (overrides selection; used by tests).
    bound:
        Lower-bound mode: ``"triangle"`` (classic LAESA L∞ bound,
        default), ``"ptolemaic"`` (Hetland's pivot-pair bound, valid for
        Ptolemaic metrics such as the QFD/QMap pair), or ``"best"``
        (pointwise maximum of both).
    rng:
        Randomness for pivot selection.

    Notes
    -----
    Indexing cost matches the paper's Section 4.2.1 analysis: selection
    spends ``c`` distances over the sample, then the table needs ``m * p``
    distances — each O(n^2) in the QFD model and O(n) in the QMap model.
    The non-triangle modes additionally charge ``p (p-1) / 2`` build
    distances for the pivot-pair matrix; query-time charging is the same
    in every mode.
    """

    #: Every database touch is a ``port.many`` over the stored rows or a
    #: small fancy-indexed candidate copy — a blocked kernel streams the
    #: former in tiles, so a memory-mapped store is never materialized.
    supports_out_of_core = True

    def __init__(
        self,
        database: ArrayLike,
        distance: DistancePort | Callable,
        *,
        n_pivots: int = 16,
        pivot_method: str = "maxmin",
        pivot_sample: int | None = None,
        pivots: Sequence[int] | None = None,
        bound: str = "triangle",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(database, distance)
        if bound not in BOUND_MODES:
            raise QueryError(
                f"unknown bound mode {bound!r}; choose from {BOUND_MODES}"
            )
        if pivots is not None:
            pivot_list = [int(i) for i in pivots]
            if not pivot_list:
                raise QueryError("explicit pivot list must not be empty")
            for i in pivot_list:
                if not 0 <= i < self.size:
                    raise QueryError(f"pivot index {i} out of range [0, {self.size})")
        else:
            n_pivots = min(n_pivots, self.size)
            pivot_list = select_pivots(
                self._data,
                n_pivots,
                self._port,
                method=pivot_method,
                sample_size=pivot_sample,
                rng=rng,
            )
        self._pivot_indices = pivot_list
        self._pivot_rows = self._data[pivot_list]
        # The m x p distance matrix ("the pivot table").
        columns = [self._port.many(self._data[j], self._data) for j in pivot_list]
        self._table = np.column_stack(columns)
        self._bound = bound
        self._pivot_pair: np.ndarray | None = None
        self._pairs: tuple[np.ndarray, np.ndarray] | None = None
        if bound != "triangle":
            # Charged: p (p-1) / 2 batched rows, the logical cost of
            # evaluating each unordered pivot pair once.
            self._pivot_pair = self._port.pairwise(self._pivot_rows)
            self._pairs = valid_pivot_pairs(self._pivot_pair)
            self._guard_ptolemaic()

    def _guard_ptolemaic(self) -> None:
        """Build-time guard: refuse Ptolemaic bounds for a metric that
        violates Ptolemy's inequality on the pivots.

        Runs on the already-paid-for pivot-pair matrix, so the check costs
        zero extra distance evaluations.  A triangle-only metric (e.g. L1)
        would produce *invalid* lower bounds here — silently wrong answers
        — which is exactly the failure mode the paper documents for
        methods that assume more structure than the distance has.
        """
        report = check_ptolemy_matrix(self._pivot_pair)
        if not report.is_metric:
            worst = report.worst()
            raise QueryError(
                f"bound={self._bound!r} requires a Ptolemaic metric, but the "
                f"pivot-pair matrix violates Ptolemy's inequality on pivots "
                f"{worst.indices} by {worst.magnitude:.3g}; "
                "use bound='triangle' for this distance"
            )

    @classmethod
    def from_parts(
        cls,
        database: ArrayLike,
        distance: DistancePort | Callable,
        pivot_indices: Sequence[int],
        table: np.ndarray,
    ) -> "PivotTable":
        """Reassemble a pivot table from persisted parts without
        recomputing the ``m x p`` distance matrix.

        A thin wrapper over the snapshot protocol (:meth:`from_state`),
        kept for :mod:`repro.persistence` backward compatibility; the
        caller is responsible for passing the same distance function the
        table was built with.
        """
        state = {
            "pivot_indices": np.asarray(
                [int(i) for i in pivot_indices], dtype=np.int64
            ),
            "table": np.asarray(table, dtype=np.float64),
        }
        return cls.from_state(database, distance, state)  # type: ignore[return-value]

    def structural_state(self) -> dict[str, np.ndarray]:
        state = {
            "pivot_indices": np.asarray(self._pivot_indices, dtype=np.int64),
            "table": self._table.copy(),
            "bound": np.str_(self._bound),
        }
        if self._pivot_pair is not None:
            state["pivot_pair"] = self._pivot_pair.copy()
        return state

    def _restore_state(self, state: dict[str, np.ndarray]) -> None:
        pivot_list = [int(i) for i in state_array(state, "pivot_indices")]
        if not pivot_list:
            raise QueryError("pivot index list must not be empty")
        for i in pivot_list:
            if not 0 <= i < self.size:
                raise QueryError(f"pivot index {i} out of range [0, {self.size})")
        stored = state_array(state, "table", dtype=np.float64)
        if stored.shape != (self.size, len(pivot_list)):
            raise QueryError(
                f"table shape {stored.shape} does not match "
                f"({self.size}, {len(pivot_list)})"
            )
        # Version-1 snapshots predate bound modes; absent keys mean the
        # classic triangle bound, so old archives keep loading unchanged.
        bound = state_str(state, "bound") if "bound" in state else "triangle"
        if bound not in BOUND_MODES:
            raise StorageError(
                f"unknown pivot-table bound mode {bound!r} in snapshot"
            )
        pair: np.ndarray | None = None
        if bound != "triangle":
            pair = state_array(state, "pivot_pair", dtype=np.float64)
            p = len(pivot_list)
            if pair.shape != (p, p):
                raise QueryError(
                    f"pivot-pair matrix shape {pair.shape} does not match ({p}, {p})"
                )
        super()._restore_state(state)
        self._pivot_indices = pivot_list
        self._pivot_rows = self._data[pivot_list]
        self._table = stored.copy()
        self._bound = bound
        self._pivot_pair = pair.copy() if pair is not None else None
        self._pairs = valid_pivot_pairs(pair) if pair is not None else None

    def _verify_state_probe(self) -> None:
        # Same sampled bound re-evaluation load_pivot_table always did:
        # entry (0, 0) of the table is d(o_0, p_0).  Uncounted, so a
        # restore still performs zero logical distance computations.
        probe = self._port.pair_uncounted(
            self._data[0], self._data[self._pivot_indices[0]]
        )
        if not np.isclose(probe, self._table[0, 0], rtol=1e-6, atol=1e-9):
            raise StorageError(
                "supplied distance disagrees with the stored table "
                "(wrong metric or wrong matrix?)"
            )
        if self._pivot_pair is not None and len(self._pivot_indices) >= 2:
            probe = self._port.pair_uncounted(
                self._data[self._pivot_indices[0]],
                self._data[self._pivot_indices[1]],
            )
            if not np.isclose(probe, self._pivot_pair[0, 1], rtol=1e-6, atol=1e-9):
                raise StorageError(
                    "supplied distance disagrees with the stored pivot-pair "
                    "matrix (wrong metric or wrong matrix?)"
                )

    @property
    def pivot_indices(self) -> list[int]:
        """Database indices of the selected pivots."""
        return list(self._pivot_indices)

    @property
    def n_pivots(self) -> int:
        """Number of pivots ``p``."""
        return len(self._pivot_indices)

    @property
    def table(self) -> np.ndarray:
        """The ``m x p`` pivot distance matrix (read-only view)."""
        view = self._table.view()
        view.setflags(write=False)
        return view

    @property
    def bound(self) -> str:
        """The active lower-bound mode (one of :data:`BOUND_MODES`)."""
        return self._bound

    @property
    def pivot_pair_matrix(self) -> "np.ndarray | None":
        """The ``p x p`` pivot-pair distance matrix (read-only view),
        present only in the non-triangle bound modes."""
        if self._pivot_pair is None:
            return None
        view = self._pivot_pair.view()
        view.setflags(write=False)
        return view

    def _query_vector(self, query: np.ndarray) -> np.ndarray:
        """Distances from the query to every pivot (``p`` evaluations)."""
        return self._port.many(query, self._pivot_rows)

    def _triangle_bounds(self, query_vector: np.ndarray) -> np.ndarray:
        """Pivot-mapped L∞ (triangle) lower bound for every object."""
        return np.max(np.abs(self._table - query_vector), axis=1)

    def _ptolemaic_lb(
        self, query_vector: np.ndarray, out: "np.ndarray | None" = None
    ) -> np.ndarray:
        return ptolemaic_bounds(
            self._table, query_vector, self._pivot_pair, self._pairs, out=out
        )

    def _lower_bounds(self, query_vector: np.ndarray) -> np.ndarray:
        """The mode's operative lower bound for every database object."""
        if self._bound == "triangle":
            return self._triangle_bounds(query_vector)
        if self._bound == "ptolemaic":
            return self._ptolemaic_lb(query_vector)
        # "best": max-merge the Ptolemaic bound into the triangle one.
        return self._ptolemaic_lb(query_vector, out=self._triangle_bounds(query_vector))

    def _bound_views(
        self, query_vector: np.ndarray, lb: np.ndarray
    ) -> list[tuple[str, np.ndarray]]:
        """``(label, bounds)`` pairs for event emission, operative last.

        In the non-triangle modes the *other* bound is computed too — an
        observability-only cost with no distance evaluations — so EXPLAIN
        can put triangle and Ptolemaic prune counts side by side.
        """
        if self._bound == "triangle":
            return [("pivot-linf", lb)]
        tri = self._triangle_bounds(query_vector)
        if self._bound == "ptolemaic":
            return [("pivot-linf", tri), ("pivot-ptolemaic", lb)]
        return [
            ("pivot-linf", tri),
            ("pivot-ptolemaic", self._ptolemaic_lb(query_vector)),
            ("pivot-best", lb),
        ]

    def _triangle_bound_matrix(self, query_vectors: np.ndarray) -> np.ndarray:
        table = self._table
        lb = np.abs(table[:, 0, None] - query_vectors[None, :, 0])
        for j in range(1, table.shape[1]):
            np.maximum(lb, np.abs(table[:, j, None] - query_vectors[None, :, j]), out=lb)
        return lb

    def _lower_bound_matrix(self, query_vectors: np.ndarray) -> np.ndarray:
        """``m x s`` lower-bound matrix for *s* stacked query vectors.

        Accumulating the maximum pivot by pivot (pair by pair in the
        Ptolemaic modes) keeps the working memory at one ``m x s`` block
        (never ``m x s x p``) and produces exactly the floats of the
        per-query :meth:`_lower_bounds` — the entries are elementwise
        maxima, with no rounding reductions involved.
        """
        if self._bound == "triangle":
            return self._triangle_bound_matrix(query_vectors)
        if self._bound == "ptolemaic":
            return ptolemaic_bound_matrix(
                self._table, query_vectors, self._pivot_pair, self._pairs
            )
        return ptolemaic_bound_matrix(
            self._table,
            query_vectors,
            self._pivot_pair,
            self._pairs,
            out=self._triangle_bound_matrix(query_vectors),
        )

    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        qv = self._query_vector(query)
        lb = self._lower_bounds(qv)
        candidates = np.flatnonzero(lb <= radius)
        if events_enabled():
            tok = emit_node_enter(ROOT, "pivot-filter")
            for label, bounds in self._bound_views(qv, lb):
                for val in bounds:
                    emit_lb_check(
                        tok, float(val), radius,
                        pruned=val > radius, label=label,
                    )
        return self._refine_range(query, radius, candidates)

    def _refine_range(
        self, query: np.ndarray, radius: float, candidates: np.ndarray
    ) -> list[Neighbor]:
        """Verify the non-filtered candidates with real distances."""
        record_filter(self.size, int(candidates.size))
        record_candidates(int(candidates.size))
        if candidates.size == 0:
            return []
        tok = emit_node_enter(ROOT, "refine")
        distances = self._port.many(query, self._data[candidates])
        within = distances <= radius
        if tok >= 0:
            for dist, idx in zip(distances, candidates):
                emit_candidate_verify(tok, int(idx), float(dist))
                if dist <= radius:
                    emit_result_add(tok, int(idx), float(dist))
        return [
            Neighbor(float(dist), int(idx))
            for dist, idx in zip(distances[within], candidates[within])
        ]

    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        qv = self._query_vector(query)
        lb = self._lower_bounds(qv)
        aux: tuple[tuple[str, np.ndarray], ...] = ()
        if events_enabled() and self._bound != "triangle":
            # Comparison bounds for the side-by-side EXPLAIN section;
            # pure table arithmetic, zero distance evaluations.
            views = self._bound_views(qv, lb)
            aux = tuple(views[:-1])
        return self._refine_knn(query, k, lb, aux=aux)

    def _refine_knn(
        self,
        query: np.ndarray,
        k: int,
        lb: np.ndarray,
        aux: "tuple[tuple[str, np.ndarray], ...]" = (),
    ) -> list[Neighbor]:
        """Best-first refinement in ascending lower-bound order.

        *aux* carries comparison bound arrays (label, values) emitted
        alongside the operative bound at each step — the "would the other
        bound have pruned here?" record behind the EXPLAIN side-by-side.
        """
        order = np.argsort(lb, kind="stable")
        heap = _KnnHeap(k)
        tok = emit_node_enter(ROOT, "refine")
        label = _BOUND_LABELS[self._bound]
        refined = 0
        for idx in order:
            for aux_label, bounds in aux:
                emit_lb_check(
                    tok, float(bounds[idx]), heap.radius,
                    pruned=bounds[idx] > heap.radius, label=aux_label,
                )
            if lb[idx] > heap.radius:
                emit_lb_check(
                    tok, float(lb[idx]), heap.radius,
                    pruned=True, label=label,
                )
                break
            emit_lb_check(
                tok, float(lb[idx]), heap.radius, pruned=False, label=label
            )
            dist = self._port.pair(query, self._data[idx])
            emit_candidate_verify(tok, int(idx), float(dist))
            heap.offer(dist, int(idx))
            refined += 1
        record_filter(self.size, refined)
        record_candidates(refined)
        return heap.neighbors()

    def _range_search_batch(
        self,
        queries: np.ndarray,
        radius: float,
        traces: "list[QueryTrace] | None" = None,
    ) -> list[list[Neighbor]]:
        """Vectorized batch plan: one ``m x s`` lower-bound matrix.

        The query-pivot distances are still evaluated per query (so
        traces charge each query exactly its ``p`` pivot distances), but
        the table scan that serves the triangle-inequality filter runs
        once for the whole chunk instead of once per query.
        """
        lb_matrix, shared = self._batch_lower_bounds(queries, traces)
        out: list[list[Neighbor]] = []
        for pos in range(queries.shape[0]):
            trace = traces[pos] if traces is not None else None
            start = perf_counter()
            with activate_trace(trace):
                candidates = np.flatnonzero(lb_matrix[:, pos] <= radius)
                result = self._refine_range(queries[pos], radius, candidates)
            result.sort()
            if trace is not None:
                trace.seconds += shared + perf_counter() - start
                trace.results = len(result)
            out.append(result)
        return out

    def _knn_search_batch(
        self,
        queries: np.ndarray,
        k: int,
        traces: "list[QueryTrace] | None" = None,
    ) -> list[list[Neighbor]]:
        """Vectorized batch plan for kNN; see :meth:`_range_search_batch`."""
        lb_matrix, shared = self._batch_lower_bounds(queries, traces)
        out: list[list[Neighbor]] = []
        for pos in range(queries.shape[0]):
            trace = traces[pos] if traces is not None else None
            start = perf_counter()
            with activate_trace(trace):
                result = self._refine_knn(queries[pos], k, lb_matrix[:, pos])
            result.sort()
            if trace is not None:
                trace.seconds += shared + perf_counter() - start
                trace.results = len(result)
            out.append(result)
        return out

    def _batch_lower_bounds(
        self, queries: np.ndarray, traces: "list[QueryTrace] | None"
    ) -> tuple[np.ndarray, float]:
        """Per-query pivot distances plus the shared ``m x s`` bound matrix.

        Returns the matrix and the per-query share of the matrix's wall
        time (the scan is joint work, amortized evenly over the chunk in
        the traces).
        """
        qvs = np.empty((queries.shape[0], self.n_pivots), dtype=np.float64)
        for pos in range(queries.shape[0]):
            trace = traces[pos] if traces is not None else None
            start = perf_counter()
            with activate_trace(trace):
                qvs[pos] = self._query_vector(queries[pos])
            if trace is not None:
                trace.seconds += perf_counter() - start
        start = perf_counter()
        lb_matrix = self._lower_bound_matrix(qvs)
        shared = (perf_counter() - start) / max(1, queries.shape[0])
        return lb_matrix, shared

    def _register_insert(self, index: int, vector: np.ndarray) -> None:
        """Compute the new object's pivot distances and grow the table.

        Costs ``p`` distance evaluations, exactly the paper's Section 4.2.1
        per-object indexing cost; the pivot set itself never changes.
        """
        row = self._port.many(vector, self._pivot_rows)
        self._table = np.vstack([self._table, row.reshape(1, -1)])

    def candidates_for_radius(self, query: ArrayLike, radius: float) -> int:
        """Number ``x`` of non-filtered objects for a range query.

        Exposed for the filtering-power experiments (the paper's querying
        complexity carries the term ``x n^2`` vs. ``x n``).  Charges the
        ``p`` pivot distances but not the refinement ones.

        Validates like :meth:`range_search`/:meth:`knn_search`: a
        wrong-dimension query raises a :class:`QueryError` instead of
        surfacing as a numpy broadcast error from the pivot scan.
        """
        try:
            q = as_vector(query, self.dim, name="query")
        except DimensionMismatchError as exc:
            raise QueryError(f"malformed range query: {exc}") from exc
        if radius < 0.0:
            raise QueryError(f"radius must be non-negative, got {radius}")
        lb = self._lower_bounds(self._query_vector(q))
        return int(np.count_nonzero(lb <= radius))
