"""Pivot tables (LAESA) — the flat distance-matrix MAM (paper Section 4.2).

A set of ``p`` pivots is selected from the database; every object ``o_i``
stores its distance vector ``(d(o_i, p_1), ..., d(o_i, p_p))``, and the
vectors form the ``m x p`` *pivot table*.  A range query ``(q, rad)``
computes the query's distance vector, filters out every object whose table
row falls outside the ``p``-dimensional hyper-cube of edge ``2 rad``
centered at the query row (the triangle-inequality lower bound
``|d(q,p_j) - d(o,p_j)| > rad`` for some ``j``), and verifies the ``x``
non-filtered candidates with real distance computations.

kNN processes candidates in ascending lower-bound order, shrinking the
dynamic radius as better neighbors arrive — once the lower bound of the
next candidate exceeds the current kth distance, the remainder is pruned
wholesale.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .._typing import ArrayLike
from ..exceptions import QueryError
from .base import AccessMethod, DistancePort, Neighbor, _KnnHeap
from .pivots import select_pivots

__all__ = ["PivotTable"]


class PivotTable(AccessMethod):
    """LAESA-style pivot table.

    Parameters
    ----------
    database:
        ``(m, n)`` rows to index.
    distance:
        Black-box metric (port or plain callable).
    n_pivots:
        Number of pivots ``p``.
    pivot_method:
        Selection technique, see :mod:`repro.mam.pivots`.
    pivot_sample:
        Optional sample size ``s`` for selection.
    pivots:
        Explicit pivot indices (overrides selection; used by tests).
    rng:
        Randomness for pivot selection.

    Notes
    -----
    Indexing cost matches the paper's Section 4.2.1 analysis: selection
    spends ``c`` distances over the sample, then the table needs ``m * p``
    distances — each O(n^2) in the QFD model and O(n) in the QMap model.
    """

    def __init__(
        self,
        database: ArrayLike,
        distance: DistancePort | Callable,
        *,
        n_pivots: int = 16,
        pivot_method: str = "maxmin",
        pivot_sample: int | None = None,
        pivots: Sequence[int] | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(database, distance)
        if pivots is not None:
            pivot_list = [int(i) for i in pivots]
            if not pivot_list:
                raise QueryError("explicit pivot list must not be empty")
            for i in pivot_list:
                if not 0 <= i < self.size:
                    raise QueryError(f"pivot index {i} out of range [0, {self.size})")
        else:
            n_pivots = min(n_pivots, self.size)
            pivot_list = select_pivots(
                self._data,
                n_pivots,
                self._port,
                method=pivot_method,
                sample_size=pivot_sample,
                rng=rng,
            )
        self._pivot_indices = pivot_list
        self._pivot_rows = self._data[pivot_list]
        # The m x p distance matrix ("the pivot table").
        columns = [self._port.many(self._data[j], self._data) for j in pivot_list]
        self._table = np.column_stack(columns)

    @classmethod
    def from_parts(
        cls,
        database: ArrayLike,
        distance: DistancePort | Callable,
        pivot_indices: Sequence[int],
        table: np.ndarray,
    ) -> "PivotTable":
        """Reassemble a pivot table from persisted parts without
        recomputing the ``m x p`` distance matrix.

        Used by :mod:`repro.persistence`; the caller is responsible for
        passing the same distance function the table was built with.
        """
        instance = cls.__new__(cls)
        AccessMethod.__init__(instance, database, distance)
        pivot_list = [int(i) for i in pivot_indices]
        if not pivot_list:
            raise QueryError("pivot index list must not be empty")
        for i in pivot_list:
            if not 0 <= i < instance.size:
                raise QueryError(f"pivot index {i} out of range [0, {instance.size})")
        stored = np.asarray(table, dtype=np.float64)
        if stored.shape != (instance.size, len(pivot_list)):
            raise QueryError(
                f"table shape {stored.shape} does not match "
                f"({instance.size}, {len(pivot_list)})"
            )
        instance._pivot_indices = pivot_list
        instance._pivot_rows = instance._data[pivot_list]
        instance._table = stored.copy()
        return instance

    @property
    def pivot_indices(self) -> list[int]:
        """Database indices of the selected pivots."""
        return list(self._pivot_indices)

    @property
    def n_pivots(self) -> int:
        """Number of pivots ``p``."""
        return len(self._pivot_indices)

    @property
    def table(self) -> np.ndarray:
        """The ``m x p`` pivot distance matrix (read-only view)."""
        view = self._table.view()
        view.setflags(write=False)
        return view

    def _query_vector(self, query: np.ndarray) -> np.ndarray:
        """Distances from the query to every pivot (``p`` evaluations)."""
        return self._port.many(query, self._pivot_rows)

    def _lower_bounds(self, query_vector: np.ndarray) -> np.ndarray:
        """Pivot-mapped L∞ lower bound for every database object."""
        return np.max(np.abs(self._table - query_vector), axis=1)

    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        qv = self._query_vector(query)
        lb = self._lower_bounds(qv)
        candidates = np.flatnonzero(lb <= radius)
        out: list[Neighbor] = []
        if candidates.size == 0:
            return out
        distances = self._port.many(query, self._data[candidates])
        for idx, dist in zip(candidates, distances):
            if dist <= radius:
                out.append(Neighbor(float(dist), int(idx)))
        return out

    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        qv = self._query_vector(query)
        lb = self._lower_bounds(qv)
        order = np.argsort(lb, kind="stable")
        heap = _KnnHeap(k)
        for idx in order:
            if lb[idx] > heap.radius:
                break
            heap.offer(self._port.pair(query, self._data[idx]), int(idx))
        return heap.neighbors()

    def _register_insert(self, index: int, vector: np.ndarray) -> None:
        """Compute the new object's pivot distances and grow the table.

        Costs ``p`` distance evaluations, exactly the paper's Section 4.2.1
        per-object indexing cost; the pivot set itself never changes.
        """
        row = self._port.many(vector, self._pivot_rows)
        self._table = np.vstack([self._table, row.reshape(1, -1)])

    def candidates_for_radius(self, query: ArrayLike, radius: float) -> int:
        """Number ``x`` of non-filtered objects for a range query.

        Exposed for the filtering-power experiments (the paper's querying
        complexity carries the term ``x n^2`` vs. ``x n``).  Charges the
        ``p`` pivot distances but not the refinement ones.
        """
        q = np.asarray(query, dtype=np.float64)
        if radius < 0.0:
            raise QueryError(f"radius must be non-negative, got {radius}")
        lb = self._lower_bounds(self._query_vector(q))
        return int(np.count_nonzero(lb <= radius))
