"""SAT — Spatial Approximation Tree (Navarro), paper Section 2.2.

The SAT approximates the Delaunay graph of the metric space: the root's
*neighbor set* ``N(a)`` contains every object closer to ``a`` than to any
earlier neighbor (processed in distance order), the remaining objects hang
under their closest neighbor, and the construction recurses.  Covering
radii are kept per node for ball pruning.

Queries combine two classic prunings:

* **covering radius**: skip child ``b`` when ``d(q, b) > R(b) + r``;
* **hyperplane**: an object assigned to ``b`` is closer to ``b`` than to
  any other member of ``{a} ∪ N(a)``, so skip ``b`` when
  ``d(q, b) > min_{c} d(q, c) + 2r``.

kNN is best-first over nodes with ``dmin = max(d(q, b) - R(b), 0)``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

import numpy as np

from .._typing import ArrayLike
from ..engine.trace import record_node_visit, record_pruned
from ..obs.events import (
    ROOT,
    emit_candidate_verify,
    emit_lb_check,
    emit_node_enter,
    emit_prune,
    emit_result_add,
)
from ..exceptions import StorageError
from .base import (
    AccessMethod,
    BoundQuery,
    DistancePort,
    Neighbor,
    NodeBatchedSearchMixin,
    _KnnHeap,
    prune_slack,
    state_array,
    state_int,
)

__all__ = ["SATree"]


class _SatNode:
    __slots__ = ("index", "radius", "children")

    def __init__(self, index: int) -> None:
        self.index = index
        self.radius = 0.0  # covering radius over the whole subtree
        self.children: list["_SatNode"] = []


class SATree(NodeBatchedSearchMixin, AccessMethod):
    """Spatial approximation tree over a black-box metric.

    Parameters
    ----------
    database:
        ``(m, n)`` rows to index.
    distance:
        Black-box metric (port or plain callable).
    rng:
        Randomness for the root choice.
    """

    def __init__(
        self,
        database: ArrayLike,
        distance: DistancePort | Callable,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(database, distance)
        rng = np.random.default_rng(0) if rng is None else rng
        root_index = int(rng.integers(0, self.size))
        rest = [i for i in range(self.size) if i != root_index]
        # Hyperplane pruning relies on the static assignment invariant
        # ("every object is closer to its neighbor than to any sibling");
        # dynamic inserts can violate it for pre-existing objects, so the
        # first insert downgrades queries to covering-radius pruning only.
        self._hyperplane_ok = True
        self._root = self._build(root_index, rest)

    def _build(self, center: int, members: list[int]) -> _SatNode:
        node = _SatNode(center)
        if not members:
            return node
        rows = self._data[members]
        d_center = self._port.many(self._data[center], rows)
        node.radius = float(d_center.max(initial=0.0))
        order = np.argsort(d_center, kind="stable")

        neighbors: list[int] = []  # positions into `members`
        neighbor_dist: list[np.ndarray] = []  # d(neighbor, all members)
        assigned: dict[int, list[int]] = {}
        for pos in order:
            d_to_center = d_center[pos]
            best_neighbor, best_dist = -1, d_to_center
            for n_pos, n_dists in zip(neighbors, neighbor_dist):
                if n_dists[pos] < best_dist:
                    best_neighbor, best_dist = n_pos, n_dists[pos]
            if best_neighbor == -1:
                # Closer to the center than to every existing neighbor:
                # promote to a new neighbor.
                neighbors.append(int(pos))
                neighbor_dist.append(self._port.many(rows[pos], rows))
                assigned[int(pos)] = []
            else:
                assigned[best_neighbor].append(int(pos))
        for n_pos in neighbors:
            child_members = [members[p] for p in assigned[n_pos]]
            node.children.append(self._build(members[n_pos], child_members))
        return node

    def _register_insert(self, index: int, vector: np.ndarray) -> None:
        """Descend to the closest child at every level, widening covering
        radii on the way, and attach as a new leaf child.

        Covering-radius pruning stays sound (radii are updated along the
        whole path); hyperplane pruning is disabled from now on because a
        dynamically grown neighbor set no longer certifies the static
        assignment invariant (see Navarro & Reyes, dynamic SAT).
        """
        self._hyperplane_ok = False
        node = self._root
        while True:
            d_node = self._port.pair(vector, self._data[node.index])
            node.radius = max(node.radius, d_node)
            if not node.children:
                break
            child_dists = self._port.many(
                vector, self._data[[c.index for c in node.children]]
            )
            best = int(np.argmin(child_dists))
            if child_dists[best] >= d_node:
                node.children.append(_SatNode(index))
                return
            node = node.children[best]
        node.children.append(_SatNode(index))

    def structural_state(self) -> dict[str, np.ndarray]:
        # Preorder; parent links reconstruct the exact child order because
        # children are appended in discovery order on both sides.
        indices: list[int] = []
        radii: list[float] = []
        parents: list[int] = []

        def collect(node: _SatNode, parent_id: int) -> None:
            node_id = len(indices)
            indices.append(node.index)
            radii.append(node.radius)
            parents.append(parent_id)
            for child in node.children:
                collect(child, node_id)

        collect(self._root, -1)
        return {
            "node_index": np.asarray(indices, dtype=np.int64),
            "node_radius": np.asarray(radii, dtype=np.float64),
            "node_parent": np.asarray(parents, dtype=np.int64),
            "hyperplane_ok": np.uint8(1 if self._hyperplane_ok else 0),
        }

    def _restore_state(self, state: dict[str, np.ndarray]) -> None:
        indices = state_array(state, "node_index", dtype=np.int64)
        radii = state_array(state, "node_radius", dtype=np.float64)
        parents = state_array(state, "node_parent", dtype=np.int64)
        hyperplane_ok = state_int(state, "hyperplane_ok")
        super()._restore_state(state)
        n = indices.shape[0]
        if n != self.size or radii.shape[0] != n or parents.shape[0] != n:
            raise StorageError(
                f"SAT snapshot: node arrays do not cover the {self.size} "
                "database objects"
            )
        if not np.array_equal(np.sort(indices), np.arange(self.size)):
            raise StorageError(
                "SAT snapshot: node indices are not a permutation of the database"
            )
        if parents[0] != -1:
            raise StorageError("SAT snapshot: first node must be the root")
        nodes: list[_SatNode] = []
        for nid in range(n):
            node = _SatNode(int(indices[nid]))
            node.radius = float(radii[nid])
            parent = int(parents[nid])
            if nid > 0:
                if not 0 <= parent < nid:
                    raise StorageError(
                        f"SAT snapshot: node {nid} has invalid parent {parent}"
                    )
                nodes[parent].children.append(node)
            nodes.append(node)
        self._hyperplane_ok = bool(hyperplane_ok)
        self._root = nodes[0]

    def _verify_state_probe(self) -> None:
        # Every child lies within its parent's covering radius — an
        # inequality the supplied metric must reproduce.
        if not self._root.children:
            return
        child = self._root.children[0]
        probe = self._port.pair_uncounted(
            self._data[self._root.index], self._data[child.index]
        )
        if probe > self._root.radius * (1.0 + 1e-9) + 1e-9:
            raise StorageError(
                "supplied distance disagrees with the stored covering radii "
                "(wrong metric or wrong matrix?)"
            )

    def _range_impl(self, bound: BoundQuery, radius: float) -> list[Neighbor]:
        out: list[Neighbor] = []

        def visit(node: _SatNode, d_node: float, parent_tok: int) -> None:
            record_node_visit()
            tok = emit_node_enter(parent_tok, f"sat:{node.index}")
            emit_candidate_verify(tok, node.index, float(d_node))
            if d_node <= radius:
                out.append(Neighbor(float(d_node), node.index))
                emit_result_add(tok, node.index, float(d_node))
            if not node.children:
                return
            child_indices = [c.index for c in node.children]
            d_children = bound.many(self._data[child_indices], child_indices)
            # Hyperplane bound uses the node itself and all its children.
            closest = min(float(d_children.min(initial=np.inf)), d_node)
            for child, d_child in zip(node.children, d_children):
                # Covering radii are exactly tight (some member's build
                # distance), so the prune test gets an ulp-scale slack.
                if d_child - prune_slack(d_child, child.radius) > child.radius + radius:
                    record_pruned()
                    emit_lb_check(
                        tok,
                        d_child - prune_slack(d_child, child.radius),
                        child.radius + radius,
                        pruned=True, label="covering-radius",
                    )
                    emit_prune(tok, 1, "covering-radius")
                    continue  # covering-radius pruning
                emit_lb_check(
                    tok,
                    d_child - prune_slack(d_child, child.radius),
                    child.radius + radius,
                    pruned=False, label="covering-radius",
                )
                if self._hyperplane_ok and d_child > closest + 2.0 * radius:
                    record_pruned()
                    emit_lb_check(
                        tok, float(d_child), closest + 2.0 * radius,
                        pruned=True, label="hyperplane",
                    )
                    emit_prune(tok, 1, "hyperplane")
                    continue  # hyperplane pruning
                visit(child, float(d_child), tok)

        visit(
            self._root,
            bound.one(self._data[self._root.index], self._root.index),
            ROOT,
        )
        return out

    def _knn_impl(self, bound: BoundQuery, k: int) -> list[Neighbor]:
        heap = _KnnHeap(k)
        counter = itertools.count()
        d_root = bound.one(self._data[self._root.index], self._root.index)
        root_dmin = max(
            d_root - self._root.radius - prune_slack(d_root, self._root.radius), 0.0
        )
        queue: list[tuple[float, int, _SatNode, float, int]] = [
            (root_dmin, next(counter), self._root, d_root, ROOT)
        ]
        while queue:
            dmin, _, node, d_node, parent_tok = heapq.heappop(queue)
            if dmin > heap.radius:
                break
            record_node_visit()
            tok = emit_node_enter(parent_tok, f"sat:{node.index}")
            emit_candidate_verify(tok, node.index, float(d_node))
            heap.offer(float(d_node), node.index)
            if not node.children:
                continue
            child_indices = [c.index for c in node.children]
            d_children = bound.many(self._data[child_indices], child_indices)
            closest = min(float(d_children.min(initial=np.inf)), float(d_node))
            tau = heap.radius
            for child, d_child in zip(node.children, d_children):
                lower = max(
                    float(d_child)
                    - child.radius
                    - prune_slack(d_child, child.radius),
                    0.0,
                )
                if self._hyperplane_ok:
                    lower = max(lower, (float(d_child) - closest) / 2.0)
                if lower <= tau:
                    emit_lb_check(tok, lower, tau, pruned=False, label="dmin")
                    heapq.heappush(
                        queue, (lower, next(counter), child, float(d_child), tok)
                    )
                else:
                    record_pruned()
                    emit_lb_check(tok, lower, tau, pruned=True, label="dmin")
                    emit_prune(tok, 1, "dmin")
        return heap.neighbors()

    def height(self) -> int:
        """Length of the longest root-to-leaf path."""

        def depth(node: _SatNode) -> int:
            if not node.children:
                return 1
            return 1 + max(depth(c) for c in node.children)

        return depth(self._root)
