"""Metric access methods (paper Sections 2.2 and 4).

All indexes treat the (vector space, distance) pair as a black-box metric
space: only distances are used for building and querying, never the raw
coordinates.  Included are the paper's three analyzed representatives —
sequential file, pivot tables (LAESA), M-tree — plus the vp-tree and GNAT
that Section 2.2 lists among the representative MAMs.
"""

from .base import AccessMethod, DistancePort, Neighbor, neighbors_from_distances
from .gnat import GNAT
from .mindex import MIndex
from .mtree import SPLIT_POLICIES, MTree
from .paged_mtree import PagedMTree
from .pivot_table import BOUND_MODES, PivotTable
from .pivots import PIVOT_METHODS, select_pivots
from .sat import SATree
from .sequential import DiskSequentialFile, SequentialFile
from .vptree import VPTree

__all__ = [
    "AccessMethod",
    "DistancePort",
    "Neighbor",
    "neighbors_from_distances",
    "SequentialFile",
    "DiskSequentialFile",
    "PivotTable",
    "BOUND_MODES",
    "MTree",
    "PagedMTree",
    "SPLIT_POLICIES",
    "MIndex",
    "SATree",
    "VPTree",
    "GNAT",
    "select_pivots",
    "PIVOT_METHODS",
]
