"""M-index (Novak & Batko) — simplified single-level variant.

Paper Section 2.2 lists the M-index among the representative MAMs.  The
structure combines pivot clustering with iDistance-style scalar keys:

* each object is assigned to the *cluster* of its nearest pivot;
* within a cluster, objects are ordered by their distance to the cluster
  pivot (the scalar key), enabling interval scans;
* the full object-to-pivot distance table is kept for LAESA-style
  filtering of interval candidates.

A range query ``(q, r)`` visits, per cluster ``i``, only the key interval
``[d(q, p_i) - r, d(q, p_i) + r]`` (a binary search), then filters the
interval candidates with the pivot-table L∞ lower bound before any exact
distance is paid.  kNN runs the classic iterative strategy: range queries
with a growing radius until the kth neighbor is provably inside.
"""

from __future__ import annotations

import bisect
from typing import Callable

import numpy as np

from .._typing import ArrayLike
from ..engine.trace import (
    record_candidates,
    record_filter,
    record_node_visit,
    record_pruned,
)
from ..exceptions import QueryError, StorageError
from ..obs.events import (
    ROOT,
    emit_candidate_verify,
    emit_lb_check,
    emit_node_enter,
    emit_prune,
    emit_result_add,
    events_enabled,
)
from .base import (
    AccessMethod,
    BoundQuery,
    DistancePort,
    Neighbor,
    NodeBatchedSearchMixin,
    state_array,
    state_float,
)
from .pivots import select_pivots

__all__ = ["MIndex"]


class MIndex(NodeBatchedSearchMixin, AccessMethod):
    """Single-level M-index over a black-box metric.

    Parameters
    ----------
    database:
        ``(m, n)`` rows to index.
    distance:
        Black-box metric (port or plain callable).
    n_pivots:
        Number of pivots (= clusters).
    pivot_method:
        Pivot selection technique (see :mod:`repro.mam.pivots`).
    rng:
        Randomness for pivot selection.
    growth:
        Radius multiplier of the iterative kNN strategy (> 1).
    """

    def __init__(
        self,
        database: ArrayLike,
        distance: DistancePort | Callable,
        *,
        n_pivots: int = 16,
        pivot_method: str = "maxmin",
        rng: np.random.Generator | None = None,
        growth: float = 2.0,
    ) -> None:
        super().__init__(database, distance)
        if growth <= 1.0:
            raise QueryError(f"radius growth factor must exceed 1, got {growth}")
        self._growth = growth
        n_pivots = min(n_pivots, self.size)
        self._pivot_indices = select_pivots(
            self._data, n_pivots, self._port, method=pivot_method, rng=rng
        )
        self._pivot_rows = self._data[self._pivot_indices]
        columns = [self._port.many(self._data[j], self._data) for j in self._pivot_indices]
        self._table = np.column_stack(columns)  # (m, p)
        self._assign_clusters()

    def _assign_clusters(self) -> None:
        owner = np.argmin(self._table, axis=1)
        keys = self._table[np.arange(self.size), owner]
        p = len(self._pivot_indices)
        self._cluster_keys: list[np.ndarray] = []
        self._cluster_members: list[np.ndarray] = []
        for cluster in range(p):
            members = np.flatnonzero(owner == cluster)
            order = np.argsort(keys[members], kind="stable")
            self._cluster_members.append(members[order])
            self._cluster_keys.append(keys[members][order])

    def structural_state(self) -> dict[str, np.ndarray]:
        return {
            "pivot_indices": np.asarray(self._pivot_indices, dtype=np.int64),
            "table": self._table.copy(),
            "growth": np.float64(self._growth),
        }

    def _restore_state(self, state: dict[str, np.ndarray]) -> None:
        pivot_list = [int(i) for i in state_array(state, "pivot_indices")]
        if not pivot_list:
            raise StorageError("pivot index list must not be empty")
        for i in pivot_list:
            if not 0 <= i < self.size:
                raise StorageError(
                    f"pivot index {i} out of range [0, {self.size})"
                )
        table = state_array(state, "table", dtype=np.float64)
        if table.shape != (self.size, len(pivot_list)):
            raise StorageError(
                f"pivot table shape {table.shape} does not match "
                f"({self.size}, {len(pivot_list)})"
            )
        growth = state_float(state, "growth")
        if growth <= 1.0:
            raise StorageError(
                f"radius growth factor must exceed 1, got {growth}"
            )
        super()._restore_state(state)
        self._growth = growth
        self._pivot_indices = pivot_list
        self._pivot_rows = self._data[pivot_list]
        self._table = table.copy()
        # Cluster assignment and scalar keys derive from the table alone —
        # pure argmin/argsort arithmetic, no distance evaluations.
        self._assign_clusters()

    def _verify_state_probe(self) -> None:
        probe = self._port.pair_uncounted(
            self._data[0], self._data[self._pivot_indices[0]]
        )
        if not np.isclose(probe, self._table[0, 0], rtol=1e-6, atol=1e-9):
            raise StorageError(
                "supplied distance disagrees with the stored pivot table "
                "(wrong metric or wrong matrix?)"
            )

    @property
    def n_pivots(self) -> int:
        """Number of pivots (= clusters)."""
        return len(self._pivot_indices)

    @property
    def pivot_indices(self) -> list[int]:
        """Database indices of the pivots."""
        return list(self._pivot_indices)

    def cluster_sizes(self) -> list[int]:
        """Objects per cluster (diagnostic)."""
        return [int(members.size) for members in self._cluster_members]

    def _register_insert(self, index: int, vector: np.ndarray) -> None:
        """Route the new object to its nearest pivot's cluster."""
        row = self._port.many(vector, self._pivot_rows)
        self._table = np.vstack([self._table, row.reshape(1, -1)])
        cluster = int(np.argmin(row))
        key = float(row[cluster])
        pos = bisect.bisect_left(self._cluster_keys[cluster].tolist(), key)
        self._cluster_keys[cluster] = np.insert(self._cluster_keys[cluster], pos, key)
        self._cluster_members[cluster] = np.insert(
            self._cluster_members[cluster], pos, index
        )

    def _candidates(
        self, query_vector: np.ndarray, radius: float, parent_tok: int = ROOT
    ) -> np.ndarray:
        """Interval-scan + pivot-filter candidates for a range query."""
        out: list[np.ndarray] = []
        for cluster in range(self.n_pivots):
            keys = self._cluster_keys[cluster]
            if keys.size == 0:
                continue
            center = query_vector[cluster]
            lo = np.searchsorted(keys, center - radius, side="left")
            hi = np.searchsorted(keys, center + radius, side="right")
            if lo >= hi:
                # The whole cluster interval misses the query ring.
                record_pruned()
                if events_enabled():
                    # Distance from the query's pivot coordinate to the
                    # nearest cluster key — how far the interval missed.
                    gap = float(np.min(np.abs(keys - center)))
                    emit_lb_check(
                        parent_tok, gap, radius,
                        pruned=True, label="cluster-interval",
                    )
                    emit_prune(parent_tok, 1, "cluster-interval")
                continue
            record_node_visit()
            tok = emit_node_enter(
                parent_tok, f"cluster {cluster}" if events_enabled() else ""
            )
            members = self._cluster_members[cluster][lo:hi]
            # LAESA filter over the full pivot table.
            lb = np.max(np.abs(self._table[members] - query_vector), axis=1)
            survivors = members[lb <= radius]
            record_filter(int(members.size), int(survivors.size))
            if tok >= 0:
                for member, val in zip(members, lb):
                    emit_lb_check(
                        tok, float(val), radius,
                        pruned=val > radius, label="laesa",
                    )
            out.append(survivors)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def _query_to_pivots(self, bound: BoundQuery) -> np.ndarray:
        """Query-to-pivot distances, arithmetic-identical to the table.

        The interval scan compares these against build-time keys with exact
        ``searchsorted`` arithmetic (a radius-0 query needs bitwise
        equality), so they must come from the same evaluation path that
        built ``self._table`` — ``port.many`` — not the kernel query
        context used for candidate refinement.
        """
        return self._port.many(bound.query, self._pivot_rows)

    def _range_impl(self, bound: BoundQuery, radius: float) -> list[Neighbor]:
        query_vector = self._query_to_pivots(bound)
        candidates = self._candidates(query_vector, radius, ROOT)
        result: list[Neighbor] = []
        if candidates.size == 0:
            return result
        record_candidates(int(candidates.size))
        tok = emit_node_enter(ROOT, "refine")
        distances = bound.many(self._data[candidates], candidates)
        for idx, dist in zip(candidates, distances):
            emit_candidate_verify(tok, int(idx), float(dist))
            if dist <= radius:
                result.append(Neighbor(float(dist), int(idx)))
                emit_result_add(tok, int(idx), float(dist))
        return result

    def _knn_impl(self, bound: BoundQuery, k: int) -> list[Neighbor]:
        query_vector = self._query_to_pivots(bound)
        # Initial radius guess: the key gap around the query in its nearest
        # cluster — cheap and usually within one growth step of the answer.
        radius = max(float(query_vector.min(initial=1.0)), 1e-12)
        seen: dict[int, float] = {}
        while True:
            round_tok = ROOT
            if events_enabled():
                round_tok = emit_node_enter(ROOT, f"round r={radius:.4g}")
            candidates = self._candidates(query_vector, radius, round_tok)
            fresh = [int(i) for i in candidates if int(i) not in seen]
            if fresh:
                record_candidates(len(fresh))
                tok = emit_node_enter(round_tok, "refine")
                distances = bound.many(self._data[fresh], fresh)
                for idx, dist in zip(fresh, distances):
                    emit_candidate_verify(tok, int(idx), float(dist))
                    seen[idx] = float(dist)
            ranked = sorted((d, i) for i, d in seen.items())
            if len(ranked) >= k and ranked[k - 1][0] <= radius:
                return [Neighbor(d, i) for d, i in ranked[:k]]
            radius *= self._growth
