"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Library version, registered access methods, and environment summary.
``verify``
    Fast self-check: QMap exactness, index/scan agreement, and identical
    distance-evaluation counts across the two models on random data.
``compare``
    Run a QFD-model vs QMap-model comparison on a synthetic histogram
    workload and print the paper-style row (build/query times + speedups).
``query``
    Run a batch of queries through the batch engine: pick the access
    method, model, executor and worker count; ``--trace`` prints the
    per-query cost aggregation (distance evaluations, filter hits,
    candidates) next to the throughput.  ``--plan auto`` hands the
    batch to the cost-based planner instead: it enumerates every
    physical alternative (both scans, filter-and-refine pipelines, one
    probe per snapshot in ``--index-dir``), prints the considered plans
    with predicted costs, and executes the cheapest; ``--plan <name>``
    forces a specific alternative.
``index build|save|load|query|ls``
    Index lifecycle on a reproducible synthetic workload: build an index
    (``build``), snapshot it to a pickle-free ``.npz`` with the workload
    recipe in its metadata (``save``), restore it with zero distance
    evaluations (``load``), run the recorded query workload against a
    restored snapshot through the batch engine (``query``, with
    ``--plan`` routing it through the planner against the snapshot's
    directory as catalog), and list the snapshots discovered in a
    directory from their headers alone (``ls``).
``report``
    Build and query a synthetic workload with a live metrics registry
    and export everything the observability layer collected — build and
    query spans, distance-evaluation counters, per-MAM node accounting —
    as an aligned table, JSON-lines, or Prometheus text format.
``explain``
    Run one query under traversal-event collection and print its EXPLAIN
    plan: the node-by-node cost tree (distance charges, lower-bound
    checks with their actual values, prunes, candidate verifications),
    totals verified against the distance counter, and the paper's
    Table 2 audit where a closed form exists.
``bench check|history``
    Benchmark regression gate: ``check`` measures the deterministic
    distance-evaluation counts of a fixed-seed workload, appends them to
    ``BENCH_history.jsonl``, and compares them against the committed
    ``benchmarks/bench_baseline.json`` (nonzero exit on regression);
    ``history`` lists the recorded runs.

``trace export``
    Run a workload under spans + traversal-event collection and write a
    Chrome trace-event JSON timeline (loadable in Perfetto /
    ``chrome://tracing``): wall-clock span slices per phase and worker
    thread, plus the first query's traversal with per-node charged
    distance evaluations.
``bench watch``
    Drift detector over the benchmark history: per metric key, the
    latest run is compared against the trailing window with robust
    median/MAD statistics — count keys zero-tolerance, timing keys
    gated at a configurable sigma.  Exit 0 clean, 1 drift, 2
    insufficient history.
``report --diff A B``
    Key-wise comparison of two ``--metrics jsonl`` exports.

``query`` and ``index query`` additionally accept ``--trace-out PATH``
(per-query ``QueryTrace`` records as JSON-lines), ``--metrics
{table,jsonl,prom}`` (run with a live registry and print the export),
``--serve-metrics [host:]port`` (serve the live registry over HTTP at
``/metrics`` / ``/healthz`` / ``/snapshot.json`` while the batch runs;
port 0 auto-assigns; ``--serve-hold S`` keeps the endpoint up S seconds
after the run), and ``--explain`` / ``--explain-out PATH`` (EXPLAIN the
batch's first query after the run).  ``query`` and ``explain`` accept
``--timeline-out PATH`` to write the run's Chrome trace-event timeline
and ``--profile-out PATH`` / ``--profile-hz HZ`` to run under the
built-in sampling profiler (``.json`` writes speedscope JSON, any other
extension collapsed flamegraph stacks).  ``query``, ``index query`` and
``report`` accept ``--log-json PATH`` to write one structured JSON
record per build/query/batch/plan event, correlated by ``trace_id``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "QMap reproduction of 'On (not) indexing quadratic form "
            "distance by metric access methods' (EDBT 2011)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show version and registered access methods")

    verify = sub.add_parser("verify", help="run a fast correctness self-check")
    verify.add_argument("--dim", type=int, default=32, help="vector dimensionality")
    verify.add_argument("--size", type=int, default=500, help="database size")
    verify.add_argument("--seed", type=int, default=0)

    compare = sub.add_parser("compare", help="QFD vs QMap on a synthetic workload")
    compare.add_argument("--method", default="mtree", help="access method name")
    compare.add_argument("--size", type=int, default=1000, help="database size")
    compare.add_argument(
        "--bins", type=int, default=4, help="RGB bins per channel (4 -> 64-d, 8 -> 512-d)"
    )
    compare.add_argument("--k", type=int, default=5, help="kNN parameter")
    compare.add_argument("--seed", type=int, default=0)

    query = sub.add_parser(
        "query", help="run a query batch through the batch engine"
    )
    query.add_argument("--method", default="pivot-table", help="access method name")
    query.add_argument(
        "--model", choices=["qfd", "qmap"], default="qmap", help="distance model"
    )
    query.add_argument("--size", type=int, default=1000, help="database size")
    query.add_argument(
        "--bins", type=int, default=4, help="RGB bins per channel (4 -> 64-d, 8 -> 512-d)"
    )
    query.add_argument("--queries", type=int, default=50, help="number of queries")
    query.add_argument("--k", type=int, default=10, help="kNN parameter")
    query.add_argument(
        "--bound",
        choices=["triangle", "ptolemaic", "best"],
        default="triangle",
        help="pivot-table lower-bound mode (ignored by other methods)",
    )
    query.add_argument(
        "--radius",
        type=float,
        default=None,
        help="run range queries with this radius instead of kNN",
    )
    query.add_argument(
        "--batch",
        action="store_true",
        help="use the batch engine (otherwise a plain per-query loop)",
    )
    query.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default=None,
        help="batch executor (default: serial, or thread when --workers > 1)",
    )
    query.add_argument("--workers", type=int, default=None, help="parallel workers")
    query.add_argument(
        "--trace",
        action="store_true",
        help="collect per-query traces and print the aggregated cost model",
    )
    query.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write per-query QueryTrace records to PATH as JSON-lines",
    )
    query.add_argument(
        "--metrics",
        choices=["table", "jsonl", "prom"],
        default=None,
        help="run with a live metrics registry and print the export",
    )
    query.add_argument(
        "--serve-metrics",
        default=None,
        metavar="[HOST:]PORT",
        help="serve the live registry over HTTP while the batch runs "
        "(GET /metrics, /healthz, /snapshot.json; port 0 auto-assigns)",
    )
    query.add_argument(
        "--serve-hold",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the metrics endpoint up this long after the run",
    )
    query.add_argument(
        "--timeline-out",
        default=None,
        metavar="PATH",
        help="write a Chrome trace-event timeline (wall-clock spans plus "
        "the first query's traversal); open in Perfetto",
    )
    query.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="run under the built-in sampling profiler and write the "
        "profile (.json -> speedscope, anything else -> collapsed "
        "stacks for flamegraph.pl)",
    )
    query.add_argument(
        "--profile-hz",
        type=float,
        default=200.0,
        metavar="HZ",
        help="profiler sampling rate in samples/second (default: 200)",
    )
    query.add_argument(
        "--log-json",
        default=None,
        metavar="PATH",
        help="write one structured JSON record per build/query/batch "
        "event to PATH (trace_id-correlated JSON-lines)",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="after the batch, re-run the first query under event "
        "collection and print its EXPLAIN plan",
    )
    query.add_argument(
        "--explain-out",
        default=None,
        metavar="PATH",
        help="write the first query's EXPLAIN plan to PATH as JSON",
    )
    query.add_argument(
        "--plan",
        default=None,
        metavar="auto|NAME",
        help="route the batch through the cost-based planner: 'auto' "
        "executes the cheapest physical plan, a plan name (e.g. "
        "'scan[qmap]') forces that alternative; the considered-plans "
        "header is printed either way (--method/--bound are ignored)",
    )
    query.add_argument(
        "--index-dir",
        default=None,
        metavar="DIR",
        help="directory of .npz index snapshots the planner may probe",
    )
    query.add_argument(
        "--calibrate-from",
        default=None,
        metavar="PATH",
        help="bench history JSON-lines used to calibrate the planner's "
        "cost model (default: uncalibrated Table 2 closed forms)",
    )
    query.add_argument("--seed", type=int, default=0)

    explain = sub.add_parser(
        "explain",
        help="run one query under traversal-event collection and print "
        "its cost tree (node-by-node distance charges, lower-bound "
        "checks, prunes) plus the Table 2 audit",
    )
    explain.add_argument("--method", default="mtree", help="access method name")
    explain.add_argument(
        "--model", choices=["qfd", "qmap"], default="qmap", help="distance model"
    )
    explain.add_argument("--size", type=int, default=500, help="database size")
    explain.add_argument(
        "--bins", type=int, default=4, help="RGB bins per channel (4 -> 64-d, 8 -> 512-d)"
    )
    explain.add_argument("--k", type=int, default=10, help="kNN parameter")
    explain.add_argument(
        "--radius",
        type=float,
        default=None,
        help="explain a range query with this radius instead of kNN",
    )
    explain.add_argument(
        "--bound",
        choices=["triangle", "ptolemaic", "best"],
        default="triangle",
        help="pivot-table lower-bound mode; ptolemaic/best render triangle "
        "vs Ptolemaic prune counts side by side (ignored by other methods)",
    )
    explain.add_argument(
        "--query-index", type=int, default=0, help="which workload query to explain"
    )
    explain.add_argument(
        "--max-events",
        type=int,
        default=10_000,
        help="cap on recorded event objects (aggregates stay exact)",
    )
    explain.add_argument(
        "--sample-every",
        type=int,
        default=1,
        help="record every N-th lb_check/candidate_verify event",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="print the plan as JSON instead of the text tree",
    )
    explain.add_argument(
        "--out", default=None, metavar="PATH", help="also write the plan JSON to PATH"
    )
    explain.add_argument(
        "--timeline-out",
        default=None,
        metavar="PATH",
        help="write a Chrome trace-event timeline of the build/query "
        "spans and this query's traversal; open in Perfetto",
    )
    explain.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="run under the built-in sampling profiler and write the "
        "profile (.json -> speedscope, anything else -> collapsed "
        "stacks for flamegraph.pl)",
    )
    explain.add_argument(
        "--profile-hz",
        type=float,
        default=200.0,
        metavar="HZ",
        help="profiler sampling rate in samples/second (default: 200)",
    )
    explain.add_argument("--seed", type=int, default=0)

    trace = sub.add_parser(
        "trace", help="export observability timelines for external viewers"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    texport = trace_sub.add_parser(
        "export",
        help="run a workload under spans + event collection and write a "
        "Chrome trace-event JSON timeline loadable in Perfetto",
    )
    texport.add_argument("--method", default="mtree", help="access method name")
    texport.add_argument(
        "--model", choices=["qfd", "qmap"], default="qmap", help="distance model"
    )
    texport.add_argument("--size", type=int, default=500, help="database size")
    texport.add_argument(
        "--bins", type=int, default=4, help="RGB bins per channel (4 -> 64-d, 8 -> 512-d)"
    )
    texport.add_argument("--queries", type=int, default=20, help="number of queries")
    texport.add_argument("--k", type=int, default=10, help="kNN parameter")
    texport.add_argument(
        "--radius",
        type=float,
        default=None,
        help="run range queries with this radius instead of kNN",
    )
    texport.add_argument(
        "--bound",
        choices=["triangle", "ptolemaic", "best"],
        default="triangle",
        help="pivot-table lower-bound mode (ignored by other methods)",
    )
    texport.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default=None,
        help="batch executor (default: serial, or thread when --workers > 1)",
    )
    texport.add_argument("--workers", type=int, default=None, help="parallel workers")
    texport.add_argument(
        "--out",
        default="repro_timeline.json",
        metavar="PATH",
        help="timeline JSON output path",
    )
    texport.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser(
        "bench", help="benchmark regression history and baseline gate"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bcheck = bench_sub.add_parser(
        "check",
        help="run the deterministic cost workload, append it to the "
        "history, and gate the counts against the committed baseline "
        "(exit 1 on regression)",
    )
    bcheck.add_argument("--size", type=int, default=400, help="database size")
    bcheck.add_argument(
        "--bins", type=int, default=4, help="RGB bins per channel (4 -> 64-d)"
    )
    bcheck.add_argument("--queries", type=int, default=10, help="number of queries")
    bcheck.add_argument("--k", type=int, default=10, help="kNN parameter")
    bcheck.add_argument("--seed", type=int, default=2011)
    bcheck.add_argument(
        "--baseline",
        default="benchmarks/bench_baseline.json",
        metavar="PATH",
        help="committed baseline file",
    )
    bcheck.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        metavar="PATH",
        help="append-only run history (JSON-lines)",
    )
    bcheck.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to the history file",
    )
    bcheck.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run instead of gating",
    )

    bhistory = bench_sub.add_parser(
        "history", help="show the recorded benchmark run history"
    )
    bhistory.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        metavar="PATH",
        help="history file to read",
    )
    bhistory.add_argument(
        "--last", type=int, default=10, help="show only the most recent N runs"
    )

    bwatch = bench_sub.add_parser(
        "watch",
        help="detect drift in the benchmark history with robust "
        "median/MAD statistics (count keys zero-tolerance, timing keys "
        "sigma-gated); exit 0 clean, 1 drift, 2 insufficient history",
    )
    bwatch.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        metavar="PATH",
        help="history file to read",
    )
    bwatch.add_argument(
        "--bench",
        default=None,
        metavar="NAME",
        help="watch only this bench name (default: every bench found)",
    )
    bwatch.add_argument(
        "--window",
        type=int,
        default=10,
        help="trailing prior runs forming the baseline window",
    )
    bwatch.add_argument(
        "--sigma",
        type=float,
        default=5.0,
        help="robust z-score threshold for timing metrics (counts stay "
        "zero-tolerance)",
    )
    bwatch.add_argument(
        "--min-history",
        type=int,
        default=3,
        help="minimum prior runs a bench needs before it is checked",
    )

    index = sub.add_parser(
        "index", help="build, snapshot, restore and query persistent indexes"
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)

    def _add_build_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--method", default="pivot-table", help="access method name")
        p.add_argument(
            "--model", choices=["qfd", "qmap"], default="qmap", help="distance model"
        )
        p.add_argument("--size", type=int, default=1000, help="database size")
        p.add_argument(
            "--bins",
            type=int,
            default=4,
            help="RGB bins per channel (4 -> 64-d, 8 -> 512-d)",
        )
        p.add_argument(
            "--queries", type=int, default=20, help="workload queries (recorded)"
        )
        p.add_argument(
            "--bound",
            choices=["triangle", "ptolemaic", "best"],
            default="triangle",
            help="pivot-table lower-bound mode (ignored by other methods)",
        )
        p.add_argument(
            "--store",
            choices=["heap", "mmap"],
            default="heap",
            help="vector storage: heap float64 arrays (default) or an "
            "out-of-core float32 memmap evaluated by the blocked kernels",
        )
        p.add_argument(
            "--store-path",
            default=None,
            metavar="PATH",
            help="backing file for --store mmap (default: a temporary file)",
        )
        p.add_argument(
            "--block-rows",
            type=int,
            default=None,
            help="tile height of the blocked kernels (selects the "
            "out-of-core evaluation path; defaults to 8192 under "
            "--store mmap)",
        )
        p.add_argument("--seed", type=int, default=0)

    ibuild = index_sub.add_parser(
        "build", help="build an index over a synthetic workload"
    )
    _add_build_args(ibuild)
    ibuild.add_argument(
        "--out", default=None, help="also snapshot the index to this .npz path"
    )

    isave = index_sub.add_parser(
        "save", help="build an index and snapshot it (build with a required --out)"
    )
    _add_build_args(isave)
    isave.add_argument("--out", required=True, help="snapshot .npz path")

    iload = index_sub.add_parser(
        "load", help="restore a snapshot and report the restore costs"
    )
    iload.add_argument("path", help="snapshot .npz path")
    iload.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the integrity probe on load",
    )
    iload.add_argument(
        "--store",
        choices=["heap", "mmap"],
        default="heap",
        help="restore the archived rows onto the heap (default) or into "
        "an out-of-core float32 memmap (still zero distance evaluations)",
    )
    iload.add_argument(
        "--block-rows",
        type=int,
        default=None,
        help="blocked-kernel tile height for --store mmap restores",
    )

    iquery = index_sub.add_parser(
        "query", help="restore a snapshot and run its recorded query workload"
    )
    iquery.add_argument("path", help="snapshot .npz path")
    iquery.add_argument("--k", type=int, default=10, help="kNN parameter")
    iquery.add_argument(
        "--radius",
        type=float,
        default=None,
        help="run range queries with this radius instead of kNN",
    )
    iquery.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default=None,
        help="batch executor (default: serial, or thread when --workers > 1)",
    )
    iquery.add_argument("--workers", type=int, default=None, help="parallel workers")
    iquery.add_argument(
        "--trace",
        action="store_true",
        help="collect per-query traces and print the aggregated cost model",
    )
    iquery.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write per-query QueryTrace records to PATH as JSON-lines",
    )
    iquery.add_argument(
        "--metrics",
        choices=["table", "jsonl", "prom"],
        default=None,
        help="run with a live metrics registry and print the export",
    )
    iquery.add_argument(
        "--serve-metrics",
        default=None,
        metavar="[HOST:]PORT",
        help="serve the live registry over HTTP while the batch runs "
        "(GET /metrics, /healthz, /snapshot.json; port 0 auto-assigns)",
    )
    iquery.add_argument(
        "--serve-hold",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the metrics endpoint up this long after the run",
    )
    iquery.add_argument(
        "--log-json",
        default=None,
        metavar="PATH",
        help="write one structured JSON record per build/query/batch "
        "event to PATH (trace_id-correlated JSON-lines)",
    )
    iquery.add_argument(
        "--explain",
        action="store_true",
        help="after the batch, re-run the first query under event "
        "collection and print its EXPLAIN plan",
    )
    iquery.add_argument(
        "--explain-out",
        default=None,
        metavar="PATH",
        help="write the first query's EXPLAIN plan to PATH as JSON",
    )
    iquery.add_argument(
        "--plan",
        default=None,
        metavar="auto|NAME",
        help="plan the recorded workload instead of probing this snapshot "
        "directly: the planner's catalog is the snapshot's directory, "
        "'auto' executes the cheapest alternative, a plan name forces one",
    )

    ils = index_sub.add_parser(
        "ls", help="list the index snapshots discovered in a directory"
    )
    ils.add_argument("directory", help="directory containing .npz snapshots")

    report = sub.add_parser(
        "report",
        help="build + query a synthetic workload and export all metrics",
    )
    report.add_argument("--method", default="pivot-table", help="access method name")
    report.add_argument(
        "--model", choices=["qfd", "qmap"], default="qmap", help="distance model"
    )
    report.add_argument("--size", type=int, default=500, help="database size")
    report.add_argument(
        "--bins", type=int, default=4, help="RGB bins per channel (4 -> 64-d, 8 -> 512-d)"
    )
    report.add_argument("--queries", type=int, default=20, help="number of queries")
    report.add_argument("--k", type=int, default=10, help="kNN parameter")
    report.add_argument(
        "--bound",
        choices=["triangle", "ptolemaic", "best"],
        default="triangle",
        help="pivot-table lower-bound mode (ignored by other methods)",
    )
    report.add_argument(
        "--radius",
        type=float,
        default=None,
        help="run range queries with this radius instead of kNN",
    )
    report.add_argument(
        "--metrics",
        choices=["table", "jsonl", "prom"],
        default="table",
        help="export format (default: table)",
    )
    report.add_argument(
        "--out", default=None, metavar="PATH", help="write the export to PATH"
    )
    report.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write per-query QueryTrace records to PATH as JSON-lines",
    )
    report.add_argument(
        "--log-json",
        default=None,
        metavar="PATH",
        help="write one structured JSON record per build/query/batch "
        "event to PATH (trace_id-correlated JSON-lines)",
    )
    report.add_argument(
        "--diff",
        nargs=2,
        default=None,
        metavar=("A", "B"),
        help="compare two --metrics jsonl export files key by key "
        "instead of running a workload",
    )
    report.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_info() -> int:
    from . import __version__
    from .models import MAM_REGISTRY, SAM_REGISTRY

    print(f"repro {__version__}")
    print("paper: Skopal, Bartos, Lokoc — EDBT 2011")
    print(f"metric access methods : {', '.join(sorted(MAM_REGISTRY))}")
    print(f"spatial access methods: {', '.join(sorted(SAM_REGISTRY))}")
    print(f"numpy {np.__version__}")
    return 0


def _cmd_verify(dim: int, size: int, seed: int) -> int:
    from .core import QMap, random_spd_matrix
    from .datasets import gaussian_vectors
    from .models import QFDModel, QMapModel

    rng = np.random.default_rng(seed)
    matrix = random_spd_matrix(dim, rng=rng, condition=20.0)
    data = gaussian_vectors(size, dim, rng=rng)
    queries = gaussian_vectors(8, dim, rng=rng)

    qmap = QMap(matrix)
    failures = 0

    worst = 0.0
    for q in queries:
        for row in data[:50]:
            worst = max(worst, abs(qmap.qfd(q, row) - qmap.distance_via_map(q, row)))
    status = "ok" if worst < 1e-8 else "FAIL"
    failures += status != "ok"
    print(f"[{status}] QMap distance preservation (worst error {worst:.2e})")

    i_qfd = QFDModel(matrix).build_index("mtree", data, capacity=8)
    i_qmap = QMapModel(matrix).build_index("mtree", data, capacity=8)
    scan = QFDModel(matrix).build_index("sequential", data)
    agree = True
    for q in queries:
        truth = [n.index for n in scan.knn_search(q, 10)]
        agree &= [n.index for n in i_qfd.knn_search(q, 10)] == truth
        agree &= [n.index for n in i_qmap.knn_search(q, 10)] == truth
    status = "ok" if agree else "FAIL"
    failures += status != "ok"
    print(f"[{status}] M-tree answers match the sequential scan in both models")

    i_qfd.reset_query_costs()
    i_qmap.reset_query_costs()
    for q in queries:
        i_qfd.knn_search(q, 10)
        i_qmap.knn_search(q, 10)
    same_counts = (
        i_qfd.query_costs().distance_computations
        == i_qmap.query_costs().distance_computations
    )
    status = "ok" if same_counts else "FAIL"
    failures += status != "ok"
    print(f"[{status}] identical distance-evaluation counts across models")

    print("self-check:", "PASSED" if failures == 0 else f"{failures} FAILURES")
    return 0 if failures == 0 else 1


def _cmd_compare(method: str, size: int, bins: int, k: int, seed: int) -> int:
    from .bench import compare_models
    from .datasets import histogram_workload

    workload = histogram_workload(size, 10, bins_per_channel=bins, seed=seed)
    kwargs = {"pivot-table": {"n_pivots": 16}, "mtree": {"capacity": 16}}.get(method, {})
    cmp = compare_models(workload, method, method_kwargs=kwargs, k=k)
    print(f"workload : {workload.name}, m={size}")
    print(f"method   : {method} {kwargs or ''}")
    print(
        f"indexing : QFD {cmp.qfd_build.seconds:.3f}s vs "
        f"QMap {cmp.qmap_build.seconds:.3f}s "
        f"({cmp.indexing_speedup:.1f}x)"
    )
    print(
        f"query    : QFD {cmp.qfd_query.seconds_per_query * 1000:.2f}ms vs "
        f"QMap {cmp.qmap_query.seconds_per_query * 1000:.2f}ms per {k}NN "
        f"({cmp.querying_speedup:.1f}x)"
    )
    print(
        f"evals    : {cmp.qfd_query.evaluations_per_query:.0f} per query "
        "(identical in both models)"
    )
    return 0


def _activate_metrics(fmt: "str | None", *, force: bool = False):
    """Install a live registry when a metrics format was requested.

    Returns ``(registry, restore)``; call ``restore()`` in a ``finally``
    block to reinstate the previous active registry.  With *fmt* ``None``
    the null registry stays active and ``restore`` is a no-op — unless
    *force* is set (``--serve-metrics`` / ``--timeline-out`` need a live
    registry even when no export format was asked for).
    """
    from .obs import MetricsRegistry, set_registry

    if fmt is None and not force:
        return None, lambda: None
    registry = MetricsRegistry()
    previous = set_registry(registry)
    return registry, lambda: set_registry(previous)


def _activate_logger(path: "str | None"):
    """Install a JSON-lines structured logger when ``--log-json`` was given.

    Returns ``(logger, restore)``; call ``restore()`` in a ``finally``
    block to reinstate the previous logger and close the file.  With
    *path* ``None`` the null logger stays active and ``restore`` is a
    no-op.
    """
    if path is None:
        return None, lambda: None
    from .obs import JsonLinesLogger, set_logger

    logger = JsonLinesLogger(path)
    previous = set_logger(logger)

    def restore() -> None:
        set_logger(previous)
        logger.close()

    return logger, restore


def _start_profiler(path: "str | None", hz: float):
    """Start the sampling profiler when ``--profile-out`` was given."""
    if path is None:
        return None
    from .obs import SamplingProfiler

    return SamplingProfiler(hz=hz).start()


def _finish_profiler(profiler, path: str, hz: float, registry) -> None:
    """Stop *profiler*, mirror its phase counts, and write the profile."""
    if profiler is None:
        return
    profiler.stop()
    profiler.record_to(registry)
    out = profiler.write(path)
    print(
        f"profile  : {out} ({profiler.sample_count} samples @ {hz:g}Hz, "
        f"{'speedscope JSON' if str(out).lower().endswith('.json') else 'collapsed stacks'})"
    )


def _start_telemetry(spec: "str | None", registry):
    """Start a :class:`~repro.obs.live.TelemetryServer` for *registry*.

    Returns the running server, or ``None`` when no ``--serve-metrics``
    spec was given.  The printed ``serving  :`` line is flushed so a
    parent process (the CI scrape smoke) can parse the bound URL before
    the batch finishes.
    """
    if spec is None:
        return None
    from .exceptions import QueryError
    from .obs import TelemetryServer, parse_serve_spec

    try:
        host, port = parse_serve_spec(spec)
    except ValueError as exc:
        raise QueryError(str(exc)) from exc
    server = TelemetryServer(registry, host=host, port=port)
    server.start()
    print(
        f"serving  : {server.url} (GET /metrics /healthz /snapshot.json)",
        flush=True,
    )
    return server


def _finish_telemetry(server, hold: float) -> None:
    """Hold the metrics endpoint up for *hold* seconds, then stop it."""
    if server is None:
        return
    if hold and hold > 0:
        import time

        print(f"holding  : metrics endpoint up for {hold:g}s", flush=True)
        try:
            time.sleep(hold)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
    server.stop()


def _write_timeline_out(path: str, registry, plan) -> None:
    """Write the run's Chrome trace-event timeline to *path*."""
    from .obs import write_timeline

    spans = registry.spans if registry is not None else None
    out = write_timeline(path, spans=spans, plan=plan)
    n_spans = len(spans or ())
    n_events = len(plan.events) if plan is not None else 0
    print(
        f"timeline : {out} ({n_spans} span(s), {n_events} traversal "
        "event(s)); open in Perfetto or chrome://tracing"
    )


def _emit_metrics(registry, fmt: "str | None", out: "str | None" = None) -> None:
    """Print (or write) the registry export in the chosen format."""
    from .obs import export

    if registry is None or fmt is None:
        return
    text = export(registry, fmt)
    if out is not None:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"metrics  : {out} [{fmt}]")
    else:
        print(text, end="" if text.endswith("\n") else "\n")


def _write_traces(collector, path: str) -> None:
    """Dump a collector's per-query records to *path* as JSON-lines."""
    from .obs import traces_to_jsonl

    traces = collector.traces
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(traces_to_jsonl(traces))
    print(f"traces   : {path} ({len(traces)} records)")


def _traced_loop(index, queries, collector, *, k: int, radius: float | None) -> list:
    """Per-query loop with tracing: one :class:`QueryTrace` per query.

    The batch engine traces its own chunks; this covers the plain loop
    (no ``--batch``) so ``--trace``/``--trace-out`` work there too, with
    the same per-query semantics as the engine's serial path.
    """
    from time import perf_counter

    from .engine.trace import QueryTrace, TracingPort, activate_trace

    am = index.access_method
    original_port = am._port
    am._port = TracingPort(original_port)
    try:
        results = []
        for pos, q in enumerate(queries):
            if radius is not None:
                trace = QueryTrace(query_index=pos, kind="range", parameter=float(radius))
            else:
                trace = QueryTrace(query_index=pos, kind="knn", parameter=float(k))
            start = perf_counter()
            with activate_trace(trace):
                if radius is not None:
                    result = index.range_search(q, radius)
                else:
                    result = index.knn_search(q, k)
            trace.seconds = perf_counter() - start
            trace.results = len(result)
            collector.add(trace)
            results.append(result)
        return results
    finally:
        am._port = original_port


def _explain_first_query(
    index, queries, *, k: int, radius: "float | None", show: bool, out: "str | None"
):
    """Re-run the batch's first query under event collection.

    The batch itself runs with events off (the bit-identical fast path);
    the plan re-executes query 0 with its own counter delta, so the
    printed totals describe exactly that one query.  Returns the
    :class:`~repro.obs.explain.ExplainPlan` (or ``None`` with no
    queries) so callers can feed it to the timeline exporter.
    """
    from .models import explain_query

    if len(queries) == 0:
        return None
    if radius is not None:
        plan = explain_query(index, queries[0], radius=radius)
    else:
        plan = explain_query(index, queries[0], k=k)
    if show:
        print()
        print(plan.render())
    if out is not None:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(plan.to_json() + "\n")
        print(f"explain  : {out} (query 0, {plan.kind})")
    return plan


def _with_bound(method: str, kwargs: dict, bound: "str | None") -> dict:
    """Merge a non-default ``--bound`` into pivot-table build kwargs."""
    if method == "pivot-table" and bound and bound != "triangle":
        return {**kwargs, "bound": bound}
    return dict(kwargs)


def _explain_planned(planned, workload, *, k, radius, show, out) -> None:
    """The planner's EXPLAIN: considered plans with measured actuals.

    Re-runs query 0 through *every* considered alternative to fill the
    ``actual=`` column (per-query flops in the cost model's unit), then
    — when the chosen plan is index-backed — prints the usual traversal
    tree for the chosen plan, whose totals still match the distance
    counter exactly.
    """
    import json

    from .models import explain_query
    from .models.planning import alternative_actual_flops

    if len(workload.queries) == 0:
        return
    query = workload.queries[0]
    actuals = alternative_actual_flops(
        planned.choice, workload.matrix, workload.database, query, k=k, radius=radius
    )
    if show:
        print()
        print(planned.choice.render(per_query=True, actual_flops=actuals))
    plan_dict = None
    if planned.execution.index is not None:
        plan = explain_query(planned.execution.index, query, k=k, radius=radius)
        if show:
            print()
            print(plan.render())
        plan_dict = plan.to_dict()
    if out is not None:
        payload = {
            "considered": [
                {
                    "plan": c.name,
                    "predicted_flops": c.total_flops,
                    "predicted_per_query_flops": c.cost.per_query_flops,
                    "actual_per_query_flops": actuals.get(c.name),
                    "executor": c.executor.describe(),
                    "chosen": c.chosen,
                }
                for c in planned.choice.considered
            ],
            "explain": plan_dict,
        }
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"explain  : {out} (query 0)")


def _run_planned(
    workload,
    *,
    plan: str,
    index_dir: "str | None",
    calibrate_from: "str | None",
    k: "int | None",
    radius: "float | None",
    executor_name: "str | None",
    workers: "int | None",
    explain: bool,
    explain_out: "str | None",
    seed: int,
    log_json: "str | None" = None,
) -> int:
    """Plan, print the considered alternatives, and execute the choice."""
    logger, restore_logger = _activate_logger(log_json)
    try:
        return _run_planned_inner(
            workload,
            plan=plan,
            index_dir=index_dir,
            calibrate_from=calibrate_from,
            k=k,
            radius=radius,
            executor_name=executor_name,
            workers=workers,
            explain=explain,
            explain_out=explain_out,
            seed=seed,
        )
    finally:
        restore_logger()
        if logger is not None:
            print(f"log      : {log_json} ({logger.records_written} records)")


def _run_planned_inner(
    workload,
    *,
    plan: str,
    index_dir: "str | None",
    calibrate_from: "str | None",
    k: "int | None",
    radius: "float | None",
    executor_name: "str | None",
    workers: "int | None",
    explain: bool,
    explain_out: "str | None",
    seed: int,
) -> int:
    import time

    from .models.planning import plan_query_batch
    from .planner import ExecutorChoice

    history = None
    if calibrate_from:
        from .bench import load_history

        history = load_history(calibrate_from)
    executor = None
    if executor_name or workers:
        executor = ExecutorChoice(
            name=executor_name or ("thread" if (workers or 1) > 1 else "serial"),
            workers=workers,
        )
    planned = plan_query_batch(
        workload.matrix,
        workload.database,
        workload.queries,
        k=k,
        radius=radius,
        index_dir=index_dir,
        history=history,
        force=None if plan == "auto" else plan,
        executor=executor,
        seed=seed,
    )
    catalog = planned.catalog
    if catalog.directory is not None:
        note = f"{len(catalog)} snapshot(s)"
        if catalog.warnings:
            note += f", {len(catalog.warnings)} warning(s)"
        print(f"catalog  : {catalog.directory}: {note}")
        for warning in catalog.warnings:
            print(f"warning: {warning}", file=sys.stderr)
    if history is not None:
        print(f"calibrate: {calibrate_from} ({len(history)} record(s))")
    print(planned.choice.render())
    execution = planned.execution
    start = time.perf_counter()
    results = execution.run_batch(workload.queries, k=k, radius=radius)
    elapsed = time.perf_counter() - start
    n = len(results)
    print(f"execution: {execution.name} [{execution.executor.describe()}]")
    print(
        f"wall time: {elapsed:.3f}s for {n} queries -> {n / elapsed:.1f} queries/s"
    )
    costs = execution.query_costs(elapsed)
    print(
        f"costs    : {costs.distance_computations} distance evaluations, "
        f"{costs.transforms} query transforms"
    )
    if explain or explain_out:
        _explain_planned(
            planned, workload, k=k, radius=radius, show=explain, out=explain_out
        )
    return 0


def _cmd_query(args: "argparse.Namespace") -> int:
    import time

    from .datasets import histogram_workload
    from .engine import TraceCollector
    from .models import QFDModel, QMapModel

    workload = histogram_workload(
        args.size, args.queries, bins_per_channel=args.bins, seed=args.seed
    )
    if args.plan:
        if args.serve_metrics is not None or args.timeline_out or args.profile_out:
            print(
                "note: --serve-metrics/--timeline-out/--profile-out are "
                "ignored under --plan",
                file=sys.stderr,
            )
        print(f"workload : {workload.name}, m={args.size}, q={args.queries}")
        return _run_planned(
            workload,
            plan=args.plan,
            index_dir=args.index_dir,
            calibrate_from=args.calibrate_from,
            k=None if args.radius is not None else args.k,
            radius=args.radius,
            executor_name=args.executor,
            workers=args.workers,
            explain=args.explain,
            explain_out=args.explain_out,
            seed=args.seed,
            log_json=args.log_json,
        )
    force = (
        args.serve_metrics is not None
        or bool(args.timeline_out)
        or bool(args.profile_out)
    )
    registry, restore_registry = _activate_metrics(args.metrics, force=force)
    logger, restore_logger = _activate_logger(args.log_json)
    profiler = _start_profiler(args.profile_out, args.profile_hz)
    server = None
    try:
        server = _start_telemetry(args.serve_metrics, registry)
        model = (QMapModel if args.model == "qmap" else QFDModel)(workload.matrix)
        kwargs = {"pivot-table": {"n_pivots": 16}, "mtree": {"capacity": 16}}.get(
            args.method, {}
        )
        kwargs = _with_bound(args.method, kwargs, getattr(args, "bound", None))
        index = model.build_index(args.method, workload.database, **kwargs)
        index.reset_query_costs()
        collector = TraceCollector() if (args.trace or args.trace_out) else None

        if args.radius is not None:
            what = f"range(r={args.radius})"
        else:
            what = f"{args.k}NN"
        mode = "batch engine" if args.batch else "per-query loop"
        print(f"workload : {workload.name}, m={args.size}, q={args.queries}")
        print(f"method   : {args.method} {kwargs or ''} [{args.model} model], {what}")

        try:
            start = time.perf_counter()
            if args.batch:
                engine_kwargs = {
                    "executor": args.executor,
                    "workers": args.workers,
                    "collector": collector,
                }
                if args.radius is not None:
                    results = index.range_search_batch(
                        workload.queries, args.radius, **engine_kwargs
                    )
                else:
                    results = index.knn_search_batch(
                        workload.queries, args.k, **engine_kwargs
                    )
            elif collector is not None:
                results = _traced_loop(
                    index, workload.queries, collector, k=args.k, radius=args.radius
                )
            elif args.radius is not None:
                results = [index.range_search(q, args.radius) for q in workload.queries]
            else:
                results = [index.knn_search(q, args.k) for q in workload.queries]
            elapsed = time.perf_counter() - start
        finally:
            # Deactivate before the EXPLAIN re-run below so the exported
            # metrics and log describe exactly the build + batch (the
            # server keeps serving this registry's final state during
            # --serve-hold).
            restore_registry()
            restore_logger()

        n = len(results)
        executor = args.executor or ("thread" if (args.workers or 1) > 1 else "serial")
        workers = f"{args.workers} workers" if args.workers else "default workers"
        print(
            f"execution: {mode}" + (f" ({executor}, {workers})" if args.batch else "")
        )
        print(
            f"wall time: {elapsed:.3f}s for {n} queries "
            f"-> {n / elapsed:.1f} queries/s"
        )
        costs = index.query_costs(elapsed)
        print(
            f"costs    : {costs.distance_computations} distance evaluations, "
            f"{costs.transforms} query transforms"
        )
        if collector is not None and args.trace:
            summary = collector.summary()
            print(
                "trace    : "
                f"{summary.evaluations_per_query:.1f} evals/query "
                f"({summary.scalar_evaluations} scalar + "
                f"{summary.batched_evaluations} batched), "
                f"filter {summary.filter_hits}/{summary.filter_checked} passed, "
                f"{summary.candidates} candidates refined, "
                f"{summary.results} results"
            )
            print(
                "latency  : "
                f"p50 {summary.p50_seconds * 1000:.2f}ms, "
                f"p95 {summary.p95_seconds * 1000:.2f}ms per query"
            )
        if collector is not None and args.trace_out:
            _write_traces(collector, args.trace_out)
        _finish_profiler(profiler, args.profile_out, args.profile_hz, registry)
        profiler = None
        if logger is not None:
            print(f"log      : {args.log_json} ({logger.records_written} records)")
        _emit_metrics(registry, args.metrics)
        plan = None
        if args.explain or args.explain_out or args.timeline_out:
            plan = _explain_first_query(
                index,
                workload.queries,
                k=args.k,
                radius=args.radius,
                show=args.explain,
                out=args.explain_out,
            )
        if args.timeline_out:
            _write_timeline_out(args.timeline_out, registry, plan)
        _finish_telemetry(server, args.serve_hold)
        server = None
        return 0
    except BaseException:
        if server is not None:
            server.stop()
        if profiler is not None:
            profiler.stop()
        restore_registry()
        restore_logger()
        raise


#: Default construction arguments for the ``index`` lifecycle commands.
_INDEX_KWARGS: dict[str, dict[str, int]] = {
    "pivot-table": {"n_pivots": 16},
    "mindex": {"n_pivots": 16},
    "mtree": {"capacity": 16},
    "paged-mtree": {"capacity": 16},
    "rtree": {"capacity": 16},
    "xtree": {"capacity": 16},
}


def _cmd_index_build(args: "argparse.Namespace") -> int:
    from .datasets import histogram_workload
    from .models import QFDModel, QMapModel

    workload = histogram_workload(
        args.size, args.queries, bins_per_channel=args.bins, seed=args.seed
    )
    model = (QMapModel if args.model == "qmap" else QFDModel)(workload.matrix)
    kwargs = _with_bound(
        args.method, _INDEX_KWARGS.get(args.method, {}), getattr(args, "bound", None)
    )
    index = model.build_index(
        args.method,
        workload.database,
        store=args.store,
        store_path=args.store_path,
        block_rows=args.block_rows,
        **kwargs,
    )
    costs = index.build_costs
    print(f"workload : {workload.name}, m={args.size}, q={args.queries}")
    store_tag = "" if args.store == "heap" else f" store={args.store}"
    print(f"method   : {args.method} {kwargs or ''} [{args.model} model]{store_tag}")
    print(
        f"build    : {costs.distance_computations} distance evaluations, "
        f"{costs.transforms} transforms, {costs.seconds:.3f}s"
    )
    if args.out is not None:
        recipe = {
            "workload_size": np.int64(args.size),
            "workload_bins": np.int64(args.bins),
            "workload_queries": np.int64(args.queries),
            "workload_seed": np.int64(args.seed),
        }
        path = index.save(args.out, extra_meta=recipe)
        print(f"snapshot : {path}")
    return 0


def _cmd_index_load(
    path: str,
    verify: bool,
    *,
    store: str = "heap",
    block_rows: "int | None" = None,
) -> int:
    from .models import load_built_index

    index = load_built_index(path, verify=verify, store=store, block_rows=block_rows)
    am = index.access_method
    costs = index.build_costs
    store_tag = "" if store == "heap" else f" store={store}"
    print(f"snapshot : {path}")
    print(
        f"method   : {index.method_name} [{index.model_name} model], "
        f"m={am.size}, dim={am.dim}{store_tag}"
    )
    print(
        f"restore  : {costs.distance_computations} distance evaluations, "
        f"{costs.transforms} transforms, {costs.seconds:.3f}s"
    )
    return 0


def _cmd_index_query(args: "argparse.Namespace") -> int:
    import time

    from .datasets import histogram_workload
    from .engine import TraceCollector
    from .exceptions import StorageError
    from .models import load_built_index
    from .persistence import read_snapshot

    snapshot = read_snapshot(args.path)
    recipe_keys = (
        "workload_size",
        "workload_bins",
        "workload_queries",
        "workload_seed",
    )
    missing = [key for key in recipe_keys if key not in snapshot.meta]
    if missing:
        raise StorageError(
            f"{snapshot.path} records no query workload recipe "
            f"(missing {missing}); snapshot it with 'repro index save'"
        )
    size, bins, n_queries, seed = (int(snapshot.meta[key]) for key in recipe_keys)
    workload = histogram_workload(size, n_queries, bins_per_channel=bins, seed=seed)
    if getattr(args, "plan", None):
        from pathlib import Path

        print(f"snapshot : {snapshot.path}")
        print(f"workload : {workload.name}, m={size}, q={n_queries}")
        return _run_planned(
            workload,
            plan=args.plan,
            index_dir=str(Path(args.path).parent),
            calibrate_from=None,
            k=None if args.radius is not None else args.k,
            radius=args.radius,
            executor_name=args.executor,
            workers=args.workers,
            explain=args.explain,
            explain_out=args.explain_out,
            seed=seed,
            log_json=args.log_json,
        )
    force = args.serve_metrics is not None
    registry, restore_registry = _activate_metrics(args.metrics, force=force)
    logger, restore_logger = _activate_logger(args.log_json)
    server = None
    try:
        server = _start_telemetry(args.serve_metrics, registry)
        # The header was already parsed above — pass the snapshot through
        # so the restore does not open and decode the archive a second
        # time.
        index = load_built_index(snapshot)
        index.reset_query_costs()
        collector = TraceCollector() if (args.trace or args.trace_out) else None

        what = f"range(r={args.radius})" if args.radius is not None else f"{args.k}NN"
        print(f"snapshot : {snapshot.path}")
        print(
            f"method   : {index.method_name} [{index.model_name} model], "
            f"m={size}, q={n_queries}, {what}"
        )
        print(
            f"restore  : {index.build_costs.distance_computations} distance "
            f"evaluations, {index.build_costs.seconds:.3f}s"
        )

        engine_kwargs = {
            "executor": args.executor,
            "workers": args.workers,
            "collector": collector,
        }
        try:
            start = time.perf_counter()
            if args.radius is not None:
                results = index.range_search_batch(
                    workload.queries, args.radius, **engine_kwargs
                )
            else:
                results = index.knn_search_batch(
                    workload.queries, args.k, **engine_kwargs
                )
            elapsed = time.perf_counter() - start
        finally:
            restore_registry()
            restore_logger()

        n = len(results)
        print(
            f"wall time: {elapsed:.3f}s for {n} queries -> {n / elapsed:.1f} queries/s"
        )
        costs = index.query_costs(elapsed)
        print(
            f"costs    : {costs.distance_computations} distance evaluations, "
            f"{costs.transforms} query transforms"
        )
        if collector is not None and args.trace:
            summary = collector.summary()
            print(
                "trace    : "
                f"{summary.evaluations_per_query:.1f} evals/query "
                f"({summary.scalar_evaluations} scalar + "
                f"{summary.batched_evaluations} batched), "
                f"filter {summary.filter_hits}/{summary.filter_checked} passed, "
                f"{summary.candidates} candidates refined, "
                f"{summary.results} results"
            )
            print(
                "latency  : "
                f"p50 {summary.p50_seconds * 1000:.2f}ms, "
                f"p95 {summary.p95_seconds * 1000:.2f}ms per query"
            )
        if collector is not None and args.trace_out:
            _write_traces(collector, args.trace_out)
        if logger is not None:
            print(f"log      : {args.log_json} ({logger.records_written} records)")
        _emit_metrics(registry, args.metrics)
        if args.explain or args.explain_out:
            _explain_first_query(
                index,
                workload.queries,
                k=args.k,
                radius=args.radius,
                show=args.explain,
                out=args.explain_out,
            )
        _finish_telemetry(server, args.serve_hold)
        server = None
        return 0
    except BaseException:
        if server is not None:
            server.stop()
        restore_registry()
        restore_logger()
        raise


def _cmd_index_ls(directory: str) -> int:
    """List discovered snapshots; unreadable files warn on stderr."""
    import os

    from .models import load_catalog

    catalog = load_catalog(directory)
    print(f"{catalog.directory}: {len(catalog)} snapshot(s)")
    if catalog.entries:
        print(
            f"  {'file':<30} {'method':<15} {'model':<5} {'bound':<9} "
            f"{'n':>7} {'dim':>5} {'fmt':>3} {'store':<5} {'pivots':>6}"
        )
        for entry in catalog.entries:
            name = os.path.basename(entry.path)
            print(
                f"  {name:<30} {entry.method:<15} {entry.model:<5} "
                f"{str(entry.bound or '-'):<9} {entry.size:>7} "
                f"{entry.dim:>5} {entry.format_version:>3} "
                f"{entry.store:<5} {entry.n_pivots if entry.n_pivots is not None else '-':>6}"
            )
    for warning in catalog.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    return 0


def _cmd_explain(args: "argparse.Namespace") -> int:
    """Build a synthetic workload and EXPLAIN one query against it."""
    from .datasets import histogram_workload
    from .exceptions import QueryError
    from .models import QFDModel, QMapModel, explain_query

    if args.query_index < 0:
        raise QueryError(f"--query-index must be >= 0, got {args.query_index}")
    workload = histogram_workload(
        args.size,
        args.query_index + 1,
        bins_per_channel=args.bins,
        seed=args.seed,
    )
    # With --timeline-out or --profile-out, run the build + explain under
    # a live registry so the timeline gets wall-clock spans alongside the
    # traversal and the profiler can attribute samples to span phases.
    registry = None
    restore = lambda: None  # noqa: E731 - trivial no-op restore
    if args.timeline_out or args.profile_out:
        from .obs import MetricsRegistry, set_registry

        registry = MetricsRegistry()
        previous = set_registry(registry)
        restore = lambda: set_registry(previous)  # noqa: E731
    profiler = _start_profiler(args.profile_out, args.profile_hz)
    try:
        model = (QMapModel if args.model == "qmap" else QFDModel)(workload.matrix)
        kwargs = _with_bound(
            args.method, _INDEX_KWARGS.get(args.method, {}), getattr(args, "bound", None)
        )
        index = model.build_index(args.method, workload.database, **kwargs)
        index.reset_query_costs()
        plan = explain_query(
            index,
            workload.queries[args.query_index],
            k=None if args.radius is not None else args.k,
            radius=args.radius,
            max_events=args.max_events,
            sample_every=args.sample_every,
        )
    except BaseException:
        if profiler is not None:
            profiler.stop()
        raise
    finally:
        restore()
    print(plan.to_json() if args.json else plan.render())
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(plan.to_json() + "\n")
        print(f"plan JSON: {args.out}")
    _finish_profiler(profiler, args.profile_out, args.profile_hz, registry)
    if args.timeline_out:
        _write_timeline_out(args.timeline_out, registry, plan)
    # A mismatch would mean the plan lost track of counted evaluations —
    # surface it as a failure, it is the feature's core invariant.
    return 0 if plan.totals_match else 1


#: The deterministic cost workload gated by ``repro bench check``: the
#: three methods with Table 1/2 closed forms, under both models.  The
#: pivot table is additionally gated in its ptolemaic and best bound
#: modes (variant suffix in the metric prefix); the unsuffixed
#: pivot-table keys stay the triangle mode, pinning the classic code
#: path against the bound-mode refactor.
_BENCH_CHECK_METHODS = ("sequential", "pivot-table", "mtree")
_BENCH_CHECK_VARIANTS: dict[str, tuple[tuple[str, dict], ...]] = {
    "pivot-table": (
        ("", {}),
        ("+ptolemaic", {"bound": "ptolemaic"}),
        ("+best", {"bound": "best"}),
    ),
}


def _bench_check_metrics(args: "argparse.Namespace") -> dict:
    """Distance-evaluation counts for the fixed-seed gate workload.

    Counts (never wall-clock) are gated: for a fixed seed they are
    bit-reproducible, so any drift means the traversal itself changed.
    """
    from .datasets import histogram_workload
    from .models import QFDModel, QMapModel

    workload = histogram_workload(
        args.size, args.queries, bins_per_channel=args.bins, seed=args.seed
    )
    metrics: dict = {}
    for model_cls, model_name in ((QFDModel, "qfd"), (QMapModel, "qmap")):
        model = model_cls(workload.matrix)
        for method in _BENCH_CHECK_METHODS:
            for suffix, extra in _BENCH_CHECK_VARIANTS.get(method, (("", {}),)):
                kwargs = {**_INDEX_KWARGS.get(method, {}), **extra}
                index = model.build_index(method, workload.database, **kwargs)
                prefix = f"{method}{suffix}.{model_name}"
                metrics[f"{prefix}.build_evaluations"] = (
                    index.build_costs.distance_computations
                )
                index.reset_query_costs()
                for q in workload.queries:
                    index.knn_search(q, args.k)
                costs = index.query_costs()
                metrics[f"{prefix}.query_evaluations"] = costs.distance_computations
                metrics[f"{prefix}.query_transforms"] = costs.transforms

    # Planner gate: snapshot the closed-form qmap indexes into a scratch
    # catalog, plan the same workload with the uncalibrated cost model
    # (calibration would make the pick machine-dependent), and gate what
    # the chosen plan actually spends.  Any drift means either the cost
    # model's argmin moved or the chosen traversal changed.
    import tempfile
    from pathlib import Path

    from .models.planning import plan_query_batch

    with tempfile.TemporaryDirectory() as tmp:
        for method in ("pivot-table", "mtree"):
            built = QMapModel(workload.matrix).build_index(
                method, workload.database, **_INDEX_KWARGS.get(method, {})
            )
            built.save(str(Path(tmp) / f"{method}.npz"))
        planned = plan_query_batch(
            workload.matrix,
            workload.database,
            workload.queries,
            k=args.k,
            index_dir=tmp,
        )
        planned.execution.run_batch(workload.queries, k=args.k)
        costs = planned.execution.query_costs()
        metrics["planner.auto.alternatives"] = len(planned.choice.considered)
        metrics["planner.auto.query_evaluations"] = costs.distance_computations
        metrics["planner.auto.query_transforms"] = costs.transforms
    return metrics


def _cmd_bench_check(args: "argparse.Namespace") -> int:
    import json
    from pathlib import Path

    from .bench import append_history, check_regression, history_record

    meta = {
        "size": args.size,
        "bins": args.bins,
        "queries": args.queries,
        "k": args.k,
        "seed": args.seed,
    }
    print(
        f"workload : m={args.size}, q={args.queries}, k={args.k}, "
        f"bins={args.bins}, seed={args.seed}"
    )
    metrics = _bench_check_metrics(args)
    if not args.no_history:
        path = append_history(history_record("bench-check", metrics, meta=meta), args.history)
        print(f"history  : appended to {path}")

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "workload": meta,
            "default_threshold": 0.0,
            "metrics": metrics,
        }
        baseline_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"baseline : rewritten at {baseline_path}")
        return 0
    if not baseline_path.exists():
        print(
            f"error: no baseline at {baseline_path}; create one with "
            "--update-baseline",
            file=sys.stderr,
        )
        return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    stored_meta = baseline.get("workload", {})
    if stored_meta and {k: stored_meta[k] for k in meta if k in stored_meta} != meta:
        print(
            f"error: baseline {baseline_path} was recorded for workload "
            f"{stored_meta}, not {meta}; rerun with matching parameters "
            "or --update-baseline",
            file=sys.stderr,
        )
        return 2
    checks = check_regression(
        metrics,
        baseline.get("metrics", {}),
        default_threshold=float(baseline.get("default_threshold", 0.0)),
        thresholds=baseline.get("thresholds"),
    )
    for check in checks:
        print("  " + check.describe())
    regressed = [c for c in checks if c.regressed]
    improved = [c for c in checks if c.drifted and not c.regressed]
    if regressed:
        print(f"bench check: {len(regressed)} metric(s) REGRESSED")
        return 1
    if improved:
        print(
            f"bench check: passed ({len(improved)} metric(s) improved — "
            "consider --update-baseline)"
        )
        return 0
    print(f"bench check: passed, {len(checks)} metrics match the baseline")
    return 0


def _cmd_bench_history(args: "argparse.Namespace") -> int:
    from .bench import load_history

    records = load_history(args.history)
    if not records:
        print(f"no history at {args.history}")
        return 0
    shown = records[-args.last :] if args.last > 0 else records
    print(f"{args.history}: {len(records)} run(s), showing {len(shown)}")
    for record in shown:
        metrics = record.get("metrics", {})
        git = str(record.get("git", "unknown"))[:12]
        print(
            f"  {record.get('timestamp', '?'):25s} {record.get('bench', '?'):12s} "
            f"git={git}  {len(metrics)} metrics"
        )
    return 0


def _cmd_bench_watch(args: "argparse.Namespace") -> int:
    from .bench import watch_history
    from .exceptions import QueryError

    if args.window < 1:
        raise QueryError(f"--window must be >= 1, got {args.window}")
    if args.min_history < 1:
        raise QueryError(f"--min-history must be >= 1, got {args.min_history}")
    report = watch_history(
        args.history,
        bench=args.bench,
        window=args.window,
        sigma=args.sigma,
        min_history=args.min_history,
    )
    print(report.render())
    return report.exit_code


def _cmd_bench(args: "argparse.Namespace") -> int:
    if args.bench_command == "check":
        return _cmd_bench_check(args)
    if args.bench_command == "history":
        return _cmd_bench_history(args)
    if args.bench_command == "watch":
        return _cmd_bench_watch(args)
    raise AssertionError(  # pragma: no cover
        f"unhandled bench command {args.bench_command!r}"
    )


def _cmd_trace_export(args: "argparse.Namespace") -> int:
    """Run a workload under span + event collection, write the timeline."""
    import time

    from .datasets import histogram_workload
    from .models import QFDModel, QMapModel, explain_query
    from .obs import MetricsRegistry, use_registry, write_timeline

    workload = histogram_workload(
        args.size, args.queries, bins_per_channel=args.bins, seed=args.seed
    )
    model = (QMapModel if args.model == "qmap" else QFDModel)(workload.matrix)
    kwargs = _with_bound(
        args.method, _INDEX_KWARGS.get(args.method, {}), getattr(args, "bound", None)
    )
    registry = MetricsRegistry()
    what = f"range(r={args.radius})" if args.radius is not None else f"{args.k}NN"
    print(f"workload : {workload.name}, m={args.size}, q={args.queries}")
    print(f"method   : {args.method} {kwargs or ''} [{args.model} model], {what}")
    with use_registry(registry):
        index = model.build_index(args.method, workload.database, **kwargs)
        index.reset_query_costs()
        start = time.perf_counter()
        if args.radius is not None:
            index.range_search_batch(
                workload.queries, args.radius,
                executor=args.executor, workers=args.workers,
            )
        else:
            index.knn_search_batch(
                workload.queries, args.k,
                executor=args.executor, workers=args.workers,
            )
        elapsed = time.perf_counter() - start
    costs = index.query_costs(elapsed)
    print(
        f"costs    : {costs.distance_computations} distance evaluations, "
        f"{costs.transforms} query transforms in {elapsed:.3f}s"
    )
    plan = None
    if len(workload.queries):
        plan = explain_query(
            index,
            workload.queries[0],
            k=None if args.radius is not None else args.k,
            radius=args.radius,
        )
    path = write_timeline(args.out, spans=registry.spans, plan=plan)
    n_events = len(plan.events) if plan is not None else 0
    print(
        f"timeline : {path} ({len(registry.spans)} span(s), {n_events} "
        "traversal event(s)); open in Perfetto or chrome://tracing"
    )
    return 0


def _cmd_trace(args: "argparse.Namespace") -> int:
    if args.trace_command == "export":
        return _cmd_trace_export(args)
    raise AssertionError(  # pragma: no cover
        f"unhandled trace command {args.trace_command!r}"
    )


def _cmd_report_diff(args: "argparse.Namespace") -> int:
    from .bench import diff_metrics, load_metrics_jsonl, render_diff

    path_a, path_b = args.diff
    deltas = diff_metrics(load_metrics_jsonl(path_a), load_metrics_jsonl(path_b))
    text = render_diff(deltas, label_a=path_a, label_b=path_b)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"diff     : {args.out}")
    else:
        print(text)
    return 0


def _cmd_report(args: "argparse.Namespace") -> int:
    """Build + query with a live registry, then export everything."""
    if args.diff is not None:
        return _cmd_report_diff(args)
    from .datasets import histogram_workload
    from .engine import TraceCollector
    from .models import QFDModel, QMapModel
    from .obs import MetricsRegistry, use_registry

    workload = histogram_workload(
        args.size, args.queries, bins_per_channel=args.bins, seed=args.seed
    )
    model = (QMapModel if args.model == "qmap" else QFDModel)(workload.matrix)
    kwargs = _with_bound(
        args.method, _INDEX_KWARGS.get(args.method, {}), getattr(args, "bound", None)
    )
    registry = MetricsRegistry()
    collector = TraceCollector() if args.trace_out else None
    logger, restore_logger = _activate_logger(args.log_json)
    try:
        with use_registry(registry):
            index = model.build_index(args.method, workload.database, **kwargs)
            index.reset_query_costs()
            if args.radius is not None:
                index.range_search_batch(
                    workload.queries, args.radius, collector=collector
                )
            else:
                index.knn_search_batch(workload.queries, args.k, collector=collector)
    finally:
        restore_logger()
    if collector is not None:
        _write_traces(collector, args.trace_out)
    if logger is not None:
        print(f"log      : {args.log_json} ({logger.records_written} records)")
    _emit_metrics(registry, args.metrics, args.out)
    return 0


def _cmd_index(args: "argparse.Namespace") -> int:
    if args.index_command in ("build", "save"):
        return _cmd_index_build(args)
    if args.index_command == "load":
        return _cmd_index_load(
            args.path,
            not args.no_verify,
            store=args.store,
            block_rows=args.block_rows,
        )
    if args.index_command == "query":
        return _cmd_index_query(args)
    if args.index_command == "ls":
        return _cmd_index_ls(args.directory)
    raise AssertionError(  # pragma: no cover
        f"unhandled index command {args.index_command!r}"
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from .exceptions import ReproError

    args = build_parser().parse_args(argv)
    try:
        if args.command == "info":
            return _cmd_info()
        if args.command == "verify":
            return _cmd_verify(args.dim, args.size, args.seed)
        if args.command == "compare":
            return _cmd_compare(args.method, args.size, args.bins, args.k, args.seed)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "explain":
            return _cmd_explain(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "index":
            return _cmd_index(args)
        if args.command == "report":
            return _cmd_report(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
