"""Result-quality metrics for approximate similarity search.

Exact metric search (the paper's setting) admits no false dismissals; the
approximate variants (e.g. :class:`~repro.mam.mtree.MTree` with
``epsilon > 0``, in the spirit of the paper's reference [27]) trade recall
for fewer distance evaluations.  This module quantifies that trade-off:

* **recall@k** — fraction of the true k nearest neighbors retrieved;
* **relative distance error** — how much farther the reported kth neighbor
  is than the true kth;
* **rank displacement** — average true rank of the reported objects minus
  the ideal rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .exceptions import QueryError
from .mam.base import Neighbor

__all__ = ["ApproximationQuality", "compare_results", "mean_quality"]


@dataclass(frozen=True)
class ApproximationQuality:
    """Quality of one approximate kNN answer against the exact answer."""

    recall: float
    relative_error: float
    rank_displacement: float

    @property
    def is_exact(self) -> bool:
        """Whether the approximate answer matches the exact one entirely."""
        return self.recall == 1.0 and self.relative_error == 0.0


def compare_results(
    exact: Sequence[Neighbor],
    approximate: Sequence[Neighbor],
    *,
    full_ranking: Sequence[Neighbor] | None = None,
) -> ApproximationQuality:
    """Score one approximate kNN result list against the exact one.

    Parameters
    ----------
    exact:
        The true k nearest neighbors (sorted).
    approximate:
        The approximate answer (sorted, same k).
    full_ranking:
        Optional longer exact ranking used to compute rank displacement for
        reported objects beyond the top k; objects not found in it are
        assigned one past its end.
    """
    if not exact:
        raise QueryError("exact result list must not be empty")
    if len(approximate) > len(exact):
        raise QueryError("approximate answer longer than the exact one")
    exact_ids = [n.index for n in exact]
    exact_set = set(exact_ids)
    hits = sum(1 for n in approximate if n.index in exact_set)
    recall = hits / len(exact)

    true_kth = exact[-1].distance
    got_kth = approximate[-1].distance if approximate else float("inf")
    if true_kth == 0.0:
        relative_error = 0.0 if got_kth == 0.0 else float("inf")
    else:
        relative_error = max(got_kth / true_kth - 1.0, 0.0)

    ranking_ids = [n.index for n in (full_ranking or exact)]
    rank_of = {idx: pos for pos, idx in enumerate(ranking_ids)}
    fallback = len(ranking_ids)
    displacement = 0.0
    for ideal_pos, neighbor in enumerate(approximate):
        displacement += max(rank_of.get(neighbor.index, fallback) - ideal_pos, 0)
    rank_displacement = displacement / max(len(approximate), 1)

    return ApproximationQuality(
        recall=recall,
        relative_error=relative_error,
        rank_displacement=rank_displacement,
    )


def mean_quality(qualities: Sequence[ApproximationQuality]) -> ApproximationQuality:
    """Average a batch of per-query quality records."""
    if not qualities:
        raise QueryError("no quality records to average")
    n = len(qualities)
    return ApproximationQuality(
        recall=sum(q.recall for q in qualities) / n,
        relative_error=sum(q.relative_error for q in qualities) / n,
        rank_displacement=sum(q.rank_displacement for q in qualities) / n,
    )
