"""Symmetrization of a general QFD matrix (paper Section 3.2.3).

The paper proves that for *any* square matrix ``A`` the symmetric matrix

    B_ii = A_ii,      B_ij = B_ji = (A_ij + A_ji) / 2

yields exactly the same quadratic form value ``z B z^T == z A z^T`` for every
vector ``z``.  Hence QFD matrices may be assumed symmetric without loss of
generality.  This module implements that construction and the associated
checks.
"""

from __future__ import annotations

import numpy as np

from .._typing import ArrayLike, Matrix, as_square_matrix

__all__ = ["symmetrize", "is_symmetric", "symmetric_part_equals_form"]


def symmetrize(a: ArrayLike) -> Matrix:
    """Return the QFD-equivalent symmetric matrix ``(A + A^T) / 2``.

    The element-wise construction in the paper (diagonal kept, off-diagonal
    entries averaged with their transposes) is exactly the symmetric part of
    ``A``; we compute it in one vectorized expression.
    """
    mat = as_square_matrix(a, name="QFD matrix")
    return (mat + mat.T) / 2.0


def is_symmetric(a: ArrayLike, *, rtol: float = 1e-9, atol: float = 1e-12) -> bool:
    """Return whether *a* is numerically symmetric."""
    mat = as_square_matrix(a, name="matrix")
    return bool(np.allclose(mat, mat.T, rtol=rtol, atol=atol))


def symmetric_part_equals_form(a: ArrayLike, z: ArrayLike) -> bool:
    """Check the paper's Section 3.2.3 identity on a concrete vector.

    Returns whether ``z A z^T`` equals ``z sym(A) z^T`` within floating
    tolerance — true for every ``z`` by the theorem; exposed mainly for
    tests and didactic use.
    """
    mat = as_square_matrix(a, name="QFD matrix")
    vec = np.asarray(z, dtype=np.float64)
    original = float(vec @ mat @ vec)
    symmetric = float(vec @ symmetrize(mat) @ vec)
    return bool(np.isclose(original, symmetric, rtol=1e-9, atol=1e-9))
