"""The quadratic form distance (paper Sections 1.2 and 3.2).

``QFD_A(u, v) = sqrt((u - v) A (u - v)^T)`` for a static symmetric
positive-definite ``n x n`` matrix ``A``.  A diagonal ``A`` reduces the QFD
to a weighted Euclidean distance and ``A = I`` to the ordinary Euclidean
distance; these degenerate cases are covered by tests.

The class below validates the matrix once at construction and then offers
single-pair, one-against-many and pairwise evaluation.  Evaluation cost is
O(n^2) per pair — the very cost the QMap model removes.
"""

from __future__ import annotations

import numpy as np

from .._typing import ArrayLike, Matrix, Vector, as_square_matrix, as_vector, as_vector_batch
from ..exceptions import NotSymmetricError
from .symmetrize import is_symmetric, symmetrize
from .validation import require_positive_definite

__all__ = ["QuadraticFormDistance"]


class QuadraticFormDistance:
    """A static-matrix quadratic form distance.

    Parameters
    ----------
    matrix:
        The ``n x n`` QFD matrix ``A``.  Must be strictly positive-definite.
        A non-symmetric matrix is accepted only with
        ``symmetrize_input=True``, in which case the QFD-equivalent
        symmetric matrix of paper Section 3.2.3 is substituted.
    symmetrize_input:
        Allow a general matrix and replace it by its symmetric part.

    Examples
    --------
    >>> import numpy as np
    >>> qfd = QuadraticFormDistance(np.eye(3))
    >>> round(qfd([0, 0, 0], [3, 4, 0]), 6)   # reduces to Euclidean
    5.0
    """

    def __init__(self, matrix: ArrayLike, *, symmetrize_input: bool = False) -> None:
        mat = as_square_matrix(matrix, name="QFD matrix")
        if not is_symmetric(mat):
            if not symmetrize_input:
                raise NotSymmetricError(
                    "QFD matrix is not symmetric; pass symmetrize_input=True "
                    "to substitute the equivalent symmetric matrix "
                    "(paper Section 3.2.3)"
                )
            mat = symmetrize(mat)
        require_positive_definite(mat, name="QFD matrix")
        self._matrix = mat
        self._matrix.setflags(write=False)

    @property
    def matrix(self) -> Matrix:
        """The validated symmetric positive-definite QFD matrix (read-only)."""
        return self._matrix

    @property
    def dim(self) -> int:
        """Dimensionality ``n`` of the histogram space."""
        return self._matrix.shape[0]

    def __call__(self, u: ArrayLike, v: ArrayLike) -> float:
        """Distance between two vectors: ``sqrt((u-v) A (u-v)^T)``."""
        return float(np.sqrt(self.squared(u, v)))

    def squared(self, u: ArrayLike, v: ArrayLike) -> float:
        """Squared form ``(u-v) A (u-v)^T`` without the square root.

        The squared value can be slightly negative from rounding when
        ``u ~ v``; it is clamped at zero so the metric postulates hold
        numerically.
        """
        z = as_vector(u, self.dim, name="u") - as_vector(v, self.dim, name="v")
        return max(float(z @ self._matrix @ z), 0.0)

    def one_to_many(self, q: ArrayLike, batch: ArrayLike) -> Vector:
        """Distances from *q* to every row of *batch*, vectorized.

        This is the workhorse of the sequential scan in the QFD model;
        still O(n^2) arithmetic per row, merely amortized through BLAS.
        """
        query = as_vector(q, self.dim, name="q")
        rows = as_vector_batch(batch, self.dim, name="batch")
        diff = rows - query
        # One BLAS gemm plus an elementwise reduction: still O(m n^2)
        # arithmetic, just with the best constants the QFD model can get.
        sq = np.einsum("ij,ij->i", diff @ self._matrix, diff)
        return np.sqrt(np.maximum(sq, 0.0))

    def pairwise(self, batch: ArrayLike) -> Matrix:
        """Full ``m x m`` distance matrix over the rows of *batch*.

        Uses the Gram-matrix identity
        ``d(u,v)^2 = uAu^T + vAv^T - 2 uAv^T`` so the cost is one
        ``m x n @ n x n`` product instead of ``m^2`` separate forms.
        """
        rows = as_vector_batch(batch, self.dim, name="batch")
        cross = rows @ self._matrix @ rows.T
        norms = np.diag(cross)
        sq = norms[:, None] + norms[None, :] - (cross + cross.T)
        # Gram-expansion cancellation can leave tiny negative values (or a
        # nonzero diagonal); clamp and pin so the metric postulates hold
        # exactly: d(u, u) == 0 and d >= 0 even for near-singular PD
        # matrices.
        np.fill_diagonal(sq, 0.0)
        return np.sqrt(np.maximum(sq, 0.0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuadraticFormDistance(dim={self.dim})"
