"""Cholesky decomposition of the QFD matrix (paper Section 3.2.2).

The paper's Algorithm 1 computes, for a symmetric positive-definite matrix
``A``, the unique lower-triangular matrix ``B`` with positive diagonal such
that ``A = B B^T``.  Two implementations are provided:

* :func:`cholesky_reference` — a line-for-line transcription of the paper's
  Algorithm 1 (pure Python loops).  It is used in tests as the ground truth
  for the numpy path and exposes exactly the paper's error behaviour.
* :func:`cholesky` — the production path backed by LAPACK via numpy, with
  the same error contract.

Both raise :class:`~repro.exceptions.NotPositiveDefiniteError` when a pivot
is non-positive, mirroring the ``"Matrix is not positive definite!"`` branch
of Algorithm 1.
"""

from __future__ import annotations

import math

import numpy as np

from .._typing import ArrayLike, Matrix, as_square_matrix
from ..exceptions import NotPositiveDefiniteError, NotSymmetricError

__all__ = ["cholesky", "cholesky_reference", "is_lower_triangular"]

#: Relative tolerance used when verifying symmetry of the input matrix.
_SYMMETRY_RTOL = 1e-9


def _require_symmetric(a: Matrix, *, name: str) -> None:
    """Raise :class:`NotSymmetricError` unless *a* is numerically symmetric."""
    if not np.allclose(a, a.T, rtol=_SYMMETRY_RTOL, atol=1e-12):
        raise NotSymmetricError(
            f"{name} must be symmetric; use repro.core.symmetrize() first "
            "(paper Section 3.2.3 shows this loses nothing)"
        )


def cholesky(a: ArrayLike, *, check_symmetry: bool = True) -> Matrix:
    """Return the lower-triangular Cholesky factor ``B`` with ``B @ B.T == A``.

    Parameters
    ----------
    a:
        Symmetric positive-definite ``n x n`` matrix.
    check_symmetry:
        When true (default), reject non-symmetric input with
        :class:`~repro.exceptions.NotSymmetricError` rather than silently
        using only one triangle.

    Raises
    ------
    NotPositiveDefiniteError
        If *a* is not strictly positive-definite.
    """
    mat = as_square_matrix(a, name="QFD matrix")
    if check_symmetry:
        _require_symmetric(mat, name="QFD matrix")
    try:
        return np.linalg.cholesky(mat)
    except np.linalg.LinAlgError as exc:
        raise NotPositiveDefiniteError(
            "Matrix is not positive definite!"
        ) from exc


def cholesky_reference(a: ArrayLike, *, check_symmetry: bool = True) -> Matrix:
    """Paper Algorithm 1: pure-Python Cholesky decomposition.

    This is a faithful transcription of the pseudo-code in Section 3.2.2,
    kept as executable documentation and as the oracle for
    :func:`cholesky`.  Complexity is O(n^3) like the paper states.
    """
    mat = as_square_matrix(a, name="QFD matrix")
    if check_symmetry:
        _require_symmetric(mat, name="QFD matrix")
    n = mat.shape[0]
    b = mat.copy()
    for i in range(n):
        for j in range(i, n):
            total = b[i, j]
            for k in range(i - 1, -1, -1):
                total -= b[i, k] * b[j, k]
            if i == j:
                if total <= 0.0:
                    raise NotPositiveDefiniteError("Matrix is not positive definite!")
                b[i, i] = math.sqrt(total)
            else:
                b[j, i] = total / b[i, i]
    # Algorithm 1 line 19: B.clearUpperTriangle()
    return np.tril(b)


def is_lower_triangular(b: ArrayLike, *, atol: float = 0.0) -> bool:
    """Return whether *b* is lower-triangular (upper part within *atol* of 0)."""
    mat = as_square_matrix(b, name="matrix")
    upper = mat[np.triu_indices_from(mat, k=1)]
    if upper.size == 0:
        return True
    return bool(np.max(np.abs(upper)) <= atol)
