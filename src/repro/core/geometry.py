"""The geometry of QFD balls (paper Figure 1, Section 3.1).

A QFD ball ``{x : QFD_A(c, x) <= r}`` is an ellipsoid whose axes are the
eigenvectors of ``A`` with semi-axis lengths ``r / sqrt(lambda_i)`` — all
balls share one orientation because ``A`` is static.  The QMap transform
is exactly the rotation-plus-scaling of Figure 1 that turns every such
ellipsoid into a Euclidean ball of the *same radius*.

These helpers compute the ellipsoid axes, sample points on a ball's
boundary, and verify the sphere-image property — Figure 1 as executable
code, used by tests and by anyone wanting to visualize the transform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._typing import ArrayLike, Matrix, Vector, as_vector
from ..exceptions import QueryError
from .qfd import QuadraticFormDistance

__all__ = ["EllipsoidAxes", "qfd_ball_axes", "sample_ball_boundary"]


@dataclass(frozen=True)
class EllipsoidAxes:
    """Principal axes of a QFD ball.

    Attributes
    ----------
    directions:
        ``(n, n)`` orthonormal matrix; column *i* is the i-th axis
        direction (an eigenvector of ``A``).
    lengths:
        ``(n,)`` semi-axis lengths ``r / sqrt(lambda_i)``, sorted from
        longest to shortest.
    radius:
        The QFD radius of the ball.
    """

    directions: Matrix
    lengths: Vector
    radius: float

    @property
    def eccentricity(self) -> float:
        """Longest over shortest semi-axis (1 for a Euclidean ball)."""
        return float(self.lengths[0] / self.lengths[-1])


def qfd_ball_axes(qfd: QuadraticFormDistance | ArrayLike, radius: float) -> EllipsoidAxes:
    """Principal axes of the QFD ball of the given *radius*.

    Every point ``c + length_i * direction_i`` lies exactly on the ball
    boundary; the identity matrix yields a sphere (all lengths = radius).
    """
    if not isinstance(qfd, QuadraticFormDistance):
        qfd = QuadraticFormDistance(qfd)
    if radius <= 0.0:
        raise QueryError(f"radius must be positive, got {radius}")
    eigenvalues, eigenvectors = np.linalg.eigh(qfd.matrix)
    lengths = radius / np.sqrt(eigenvalues)
    order = np.argsort(lengths)[::-1]
    return EllipsoidAxes(
        directions=eigenvectors[:, order],
        lengths=lengths[order],
        radius=float(radius),
    )


def sample_ball_boundary(
    qfd: QuadraticFormDistance | ArrayLike,
    center: ArrayLike,
    radius: float,
    n_points: int = 64,
    *,
    rng: np.random.Generator | None = None,
) -> Matrix:
    """Points with ``QFD(center, point) == radius`` exactly.

    Sampling recipe: uniform directions on the Euclidean unit sphere,
    pulled back through the inverse Cholesky factor so the quadratic form
    evaluates to ``radius^2``.  Under the QMap transform these points land
    on the Euclidean sphere of the same radius around the transformed
    center — the testable content of Figure 1.
    """
    if not isinstance(qfd, QuadraticFormDistance):
        qfd = QuadraticFormDistance(qfd)
    if radius < 0.0:
        raise QueryError(f"radius must be non-negative, got {radius}")
    if n_points < 1:
        raise QueryError(f"n_points must be >= 1, got {n_points}")
    rng = np.random.default_rng(0) if rng is None else rng
    c = as_vector(center, qfd.dim, name="center")
    gauss = rng.standard_normal((n_points, qfd.dim))
    norms = np.linalg.norm(gauss, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    sphere = gauss / norms  # uniform on the unit L2 sphere
    # Want z with z A z^T = r^2. With A = B B^T take z = r * s B^{-1}
    # (row convention: z B = r s, so |z B| = r).
    import scipy.linalg

    from .cholesky import cholesky

    b = cholesky(qfd.matrix, check_symmetry=False)
    # Solve z B = r s  <=>  B^T z^T = r s^T for each row.
    z = scipy.linalg.solve_triangular(b.T, (radius * sphere).T, lower=False).T
    return c + z
