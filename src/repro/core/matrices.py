"""QFD matrix constructors (paper Sections 1.2 and 5.1).

The paper's testbed builds its matrix with the Hafner et al. recipe

    A_ij = 1 - d_ij / d_max

where ``d_ij`` is the Euclidean distance between the "color prototypes" of
bins *i* and *j* after conversion to CIE Lab.  That recipe is implemented
generically here over *any* set of bin prototypes (points in a feature
space); :func:`repro.color.lab_bin_prototypes` supplies the RGB/Lab ones.

Additional constructors cover the degenerate cases the paper mentions
(identity -> Euclidean, diagonal -> weighted Euclidean), kernel-based
strictly-PD alternatives, band matrices for controlled cross-talk, and
random SPD matrices for property-based testing.
"""

from __future__ import annotations

import numpy as np

from .._typing import ArrayLike, Matrix, as_vector, as_vector_batch
from ..exceptions import MatrixError, NotPositiveDefiniteError
from .validation import PDRepair, ensure_positive_definite, is_positive_definite

__all__ = [
    "identity_matrix",
    "diagonal_matrix",
    "prototype_similarity_matrix",
    "gaussian_kernel_matrix",
    "laplacian_kernel_matrix",
    "band_matrix",
    "random_spd_matrix",
]


def identity_matrix(dim: int) -> Matrix:
    """Identity QFD matrix — reduces the QFD to the Euclidean distance."""
    if dim < 1:
        raise MatrixError(f"dim must be >= 1, got {dim}")
    return np.eye(dim)


def diagonal_matrix(weights: ArrayLike) -> Matrix:
    """Diagonal QFD matrix — reduces the QFD to a weighted Euclidean distance.

    All weights must be strictly positive to keep the matrix PD.
    """
    w = as_vector(weights, name="weights")
    if np.any(w <= 0.0):
        raise NotPositiveDefiniteError("diagonal weights must be strictly positive")
    return np.diag(w)


def prototype_similarity_matrix(
    prototypes: ArrayLike,
    *,
    ensure_pd: bool = True,
    margin: float = 1e-9,
) -> PDRepair:
    """Hafner-style matrix ``A_ij = 1 - d_ij / d_max`` over bin prototypes.

    Parameters
    ----------
    prototypes:
        ``(n, c)`` array; row *i* is the prototype (e.g. a CIE Lab color) of
        histogram bin *i*.  ``d_ij`` is the Euclidean distance between rows.
    ensure_pd:
        The recipe guarantees symmetry but not strict positive definiteness
        for every layout; when true (default) a minimal diagonal shift is
        applied if needed and recorded in the returned
        :class:`~repro.core.validation.PDRepair`.  When false, a non-PD
        outcome raises :class:`~repro.exceptions.NotPositiveDefiniteError`.
    margin:
        Safety margin for the diagonal shift.

    Returns
    -------
    PDRepair
        With ``.matrix`` holding the QFD matrix and ``.shift`` the (usually
        zero) repair applied; experiments report the shift to stay honest
        about the matrix actually used (DESIGN.md Section 5).
    """
    points = as_vector_batch(prototypes, name="prototypes")
    if points.shape[0] < 2:
        raise MatrixError("need at least two prototypes")
    diff = points[:, None, :] - points[None, :, :]
    dist = np.sqrt(np.sum(diff * diff, axis=2))
    d_max = float(dist.max())
    if d_max <= 0.0:
        raise MatrixError("all prototypes coincide; d_max would be zero")
    a = 1.0 - dist / d_max
    if ensure_pd:
        return ensure_positive_definite(a, margin=margin)
    if not is_positive_definite(a):
        raise NotPositiveDefiniteError(
            "prototype similarity matrix is not strictly positive-definite; "
            "pass ensure_pd=True to apply a minimal diagonal shift"
        )
    return PDRepair(matrix=a, shift=0.0, min_eigenvalue=float(np.linalg.eigvalsh(a)[0]))


def gaussian_kernel_matrix(prototypes: ArrayLike, *, sigma: float = 1.0) -> Matrix:
    """Strictly-PD alternative: ``A_ij = exp(-d_ij^2 / (2 sigma^2))``.

    The Gaussian kernel is positive-definite for any distinct prototype
    set, so no repair shift is ever needed.
    """
    if sigma <= 0.0:
        raise MatrixError(f"sigma must be positive, got {sigma}")
    points = as_vector_batch(prototypes, name="prototypes")
    diff = points[:, None, :] - points[None, :, :]
    sq = np.sum(diff * diff, axis=2)
    return np.exp(-sq / (2.0 * sigma * sigma))


def laplacian_kernel_matrix(prototypes: ArrayLike, *, alpha: float = 1.0) -> Matrix:
    """Strictly-PD alternative: ``A_ij = exp(-alpha d_ij)`` (Laplacian kernel)."""
    if alpha <= 0.0:
        raise MatrixError(f"alpha must be positive, got {alpha}")
    points = as_vector_batch(prototypes, name="prototypes")
    diff = points[:, None, :] - points[None, :, :]
    dist = np.sqrt(np.sum(diff * diff, axis=2))
    return np.exp(-alpha * dist)


def band_matrix(dim: int, *, correlation: float = 0.4, bandwidth: int = 1) -> Matrix:
    """Band QFD matrix: unit diagonal, ``correlation ** |i-j|`` within the band.

    Models local cross-talk between neighbouring histogram bins (as in the
    paper's 3-color RGB example where G and B correlate at 0.5).  For
    ``|correlation| < 1`` the full exponential-decay matrix is PD (it is a
    Kac-Murdock-Szegő matrix); truncating it to a band keeps PD for the
    defaults used here, which is verified at construction.
    """
    if dim < 1:
        raise MatrixError(f"dim must be >= 1, got {dim}")
    if not 0.0 <= abs(correlation) < 1.0:
        raise MatrixError("correlation must satisfy |correlation| < 1")
    if bandwidth < 0:
        raise MatrixError("bandwidth must be non-negative")
    idx = np.arange(dim)
    lag = np.abs(idx[:, None] - idx[None, :])
    a = np.where(lag <= bandwidth, np.power(correlation, lag, dtype=np.float64), 0.0)
    np.fill_diagonal(a, 1.0)
    if not is_positive_definite(a):
        raise NotPositiveDefiniteError(
            f"band matrix (dim={dim}, correlation={correlation}, "
            f"bandwidth={bandwidth}) is not positive-definite; "
            "reduce |correlation| or the bandwidth"
        )
    return a


def random_spd_matrix(
    dim: int,
    *,
    rng: np.random.Generator | None = None,
    condition: float = 10.0,
) -> Matrix:
    """Random symmetric positive-definite matrix with a target condition number.

    Built as ``Q diag(lambda) Q^T`` with a Haar-random orthogonal ``Q`` and
    eigenvalues log-spaced between ``1/condition`` and ``1``.  Used heavily
    by the property-based tests.
    """
    if dim < 1:
        raise MatrixError(f"dim must be >= 1, got {dim}")
    if condition < 1.0:
        raise MatrixError("condition must be >= 1")
    rng = np.random.default_rng() if rng is None else rng
    gauss = rng.standard_normal((dim, dim))
    q, r = np.linalg.qr(gauss)
    # Fix the sign ambiguity of QR so Q is Haar-distributed.
    q = q * np.sign(np.diag(r))
    lam = np.logspace(-np.log10(condition), 0.0, dim)
    return (q * lam) @ q.T
