"""The QMap model — homeomorphic QFD-to-Euclidean transformation (Section 3.3).

Given the static QFD matrix ``A`` and its Cholesky factor ``B`` with
``A = B B^T`` (Section 3.2.2), the paper derives

    QFD_A(u, v)^2 = (u - v) B B^T (u - v)^T = (uB - vB)(uB - vB)^T
                  = L2(uB, vB)^2

so the linear map ``u -> uB`` carries the QFD space onto an equivalent
Euclidean space with *exactly* preserved distances.  Databases transformed
this way can be indexed by any unmodified metric (or spatial) access method,
paying O(n) per distance instead of O(n^2).

:class:`QMap` encapsulates the factorization and the forward/inverse maps.
The transformation itself costs O(n^2) per vector (one matrix-to-vector
product), which is why indexing a *sequential file* is the single case in
Table 1 where the raw QFD model wins.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from .._typing import ArrayLike, Matrix, Vector, as_vector, as_vector_batch
from ..kernels.cholesky_cache import cached_cholesky
from .qfd import QuadraticFormDistance

__all__ = ["QMap"]


class QMap:
    """Transforms vectors from a QFD space to the equivalent Euclidean space.

    Parameters
    ----------
    qfd:
        The quadratic form distance to map, or a raw QFD matrix accepted by
        :class:`~repro.core.qfd.QuadraticFormDistance`.

    Examples
    --------
    >>> import numpy as np
    >>> a = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.5], [0.0, 0.5, 1.0]])
    >>> qmap = QMap(a)
    >>> u, v = np.array([1.0, 0, 0]), np.array([0, 1.0, 0])
    >>> l2 = np.linalg.norm(qmap.transform(u) - qmap.transform(v))
    >>> bool(np.isclose(l2, qmap.qfd(u, v)))
    True
    """

    def __init__(self, qfd: QuadraticFormDistance | ArrayLike) -> None:
        if not isinstance(qfd, QuadraticFormDistance):
            qfd = QuadraticFormDistance(qfd)
        self._qfd = qfd
        # Content-addressed cache: experiment sweeps construct many QMaps
        # over the same handful of matrices, so the O(n^3) factorization is
        # paid once per distinct matrix (the factor is already read-only).
        self._b = cached_cholesky(qfd.matrix)

    @property
    def qfd(self) -> QuadraticFormDistance:
        """The source quadratic form distance."""
        return self._qfd

    @property
    def matrix(self) -> Matrix:
        """The transformation matrix ``B`` (lower-triangular Cholesky factor)."""
        return self._b

    @property
    def dim(self) -> int:
        """Dimensionality of both the source and target spaces (``k = n``)."""
        return self._qfd.dim

    def transform(self, u: ArrayLike) -> Vector:
        """Map one vector into the Euclidean space: ``u' = u B``  (O(n^2))."""
        return as_vector(u, self.dim, name="u") @ self._b

    def transform_batch(self, batch: ArrayLike) -> Matrix:
        """Map a whole ``(m, n)`` database at once: ``U' = U B``."""
        return as_vector_batch(batch, self.dim, name="batch") @ self._b

    def inverse_transform(self, u_prime: ArrayLike) -> Vector:
        """Map a Euclidean-space vector back to the QFD space.

        ``B`` is lower-triangular with positive diagonal, hence invertible;
        a triangular solve recovers ``u`` from ``u' = u B`` — the map is a
        homeomorphism, as the paper's title transformation requires.
        """
        vec = as_vector(u_prime, self.dim, name="u_prime")
        # u' = u B  <=>  B^T u^T = u'^T; B^T is upper-triangular.
        return scipy.linalg.solve_triangular(self._b.T, vec, lower=False)

    def inverse_transform_batch(self, batch: ArrayLike) -> Matrix:
        """Inverse map for a batch of row vectors."""
        rows = as_vector_batch(batch, self.dim, name="batch")
        return scipy.linalg.solve_triangular(self._b.T, rows.T, lower=False).T

    def euclidean(self, u_prime: ArrayLike, v_prime: ArrayLike) -> float:
        """L2 distance in the target space (equals the source-space QFD)."""
        a = as_vector(u_prime, self.dim, name="u_prime")
        b = as_vector(v_prime, self.dim, name="v_prime")
        return float(np.linalg.norm(a - b))

    def distance_via_map(self, u: ArrayLike, v: ArrayLike) -> float:
        """QFD computed the QMap way: transform both vectors, then L2.

        Exposed for tests and didactic use; real deployments transform each
        vector once at indexing time and never per-distance.
        """
        return self.euclidean(self.transform(u), self.transform(v))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QMap(dim={self.dim})"
