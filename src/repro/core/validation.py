"""Positive-definiteness validation for QFD matrices (paper Section 3.2.3).

The paper argues that the QFD matrix must be *strictly* positive-definite:
from the identity postulate of a metric, ``z A z^T = 0`` may hold only for
``z = 0``.  A merely positive-*semi*definite matrix produces a pseudo-metric
in which distinct histograms can have distance zero.

The checks here are used by the matrix constructors and by
:class:`~repro.core.qmap.QMap` before attempting the Cholesky factorization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._typing import ArrayLike, Matrix, as_square_matrix
from ..exceptions import NotPositiveDefiniteError
from .cholesky import cholesky
from .symmetrize import is_symmetric, symmetrize

__all__ = [
    "is_positive_definite",
    "require_positive_definite",
    "min_eigenvalue",
    "ensure_positive_definite",
    "PDRepair",
]


def is_positive_definite(a: ArrayLike) -> bool:
    """Return whether the symmetric part of *a* is strictly positive-definite.

    Uses a Cholesky attempt, which is both the fastest practical test and
    the one the paper itself relies on (Algorithm 1's error branch).
    """
    mat = symmetrize(as_square_matrix(a, name="matrix"))
    try:
        cholesky(mat, check_symmetry=False)
    except NotPositiveDefiniteError:
        return False
    return True


def require_positive_definite(a: ArrayLike, *, name: str = "QFD matrix") -> Matrix:
    """Return *a* as an array, raising unless it is symmetric PD."""
    mat = as_square_matrix(a, name=name)
    if not is_symmetric(mat):
        mat_sym = symmetrize(mat)
    else:
        mat_sym = mat
    try:
        cholesky(mat_sym, check_symmetry=False)
    except NotPositiveDefiniteError:
        raise NotPositiveDefiniteError(
            f"{name} is not strictly positive-definite; QFD would violate "
            "the identity metric postulate (paper Section 3.2.3)"
        ) from None
    return mat


def min_eigenvalue(a: ArrayLike) -> float:
    """Smallest eigenvalue of the symmetric part of *a*.

    Negative or zero values mean the matrix fails strict positive
    definiteness; the magnitude tells how large a diagonal shift
    :func:`ensure_positive_definite` needs.
    """
    mat = symmetrize(as_square_matrix(a, name="matrix"))
    return float(np.linalg.eigvalsh(mat)[0])


@dataclass(frozen=True)
class PDRepair:
    """Outcome of :func:`ensure_positive_definite`.

    Attributes
    ----------
    matrix:
        The (possibly shifted) symmetric positive-definite matrix.
    shift:
        The value added to the diagonal; ``0.0`` when no repair was needed.
    min_eigenvalue:
        Smallest eigenvalue of the *input* matrix, recorded for reporting.
    """

    matrix: Matrix
    shift: float
    min_eigenvalue: float

    @property
    def was_repaired(self) -> bool:
        """Whether a diagonal shift was applied."""
        return self.shift > 0.0


def ensure_positive_definite(a: ArrayLike, *, margin: float = 1e-9) -> PDRepair:
    """Make the symmetric part of *a* strictly PD by a minimal diagonal shift.

    Used by the Hafner matrix constructor (DESIGN.md Section 5): the
    ``A_ij = 1 - d_ij / d_max`` recipe is not guaranteed strictly PD for
    every prototype layout, so when it fails we add
    ``(|lambda_min| + margin) * I`` and report the shift honestly.
    """
    mat = symmetrize(as_square_matrix(a, name="matrix"))
    lam = float(np.linalg.eigvalsh(mat)[0])
    # A strictly positive smallest eigenvalue may still be so tiny that the
    # Cholesky pivot underflows; the margin guards that edge too.
    if lam > margin and is_positive_definite(mat):
        return PDRepair(matrix=mat, shift=0.0, min_eigenvalue=lam)
    shift = abs(lam) + margin
    repaired = mat + shift * np.eye(mat.shape[0])
    return PDRepair(matrix=repaired, shift=shift, min_eigenvalue=lam)
