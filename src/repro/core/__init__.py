"""Core of the reproduction: QFD theory and the QMap transformation.

This package implements the paper's primary contribution (Section 3):

* :class:`~repro.core.qfd.QuadraticFormDistance` — the O(n^2) distance.
* :class:`~repro.core.qmap.QMap` — the exact QFD-to-Euclidean map built from
  the Cholesky factor of the QFD matrix.
* :mod:`~repro.core.cholesky` — paper Algorithm 1 and its numpy twin.
* :mod:`~repro.core.symmetrize` / :mod:`~repro.core.validation` — the WLOG
  assumptions of Section 3.2.3 (symmetry, strict positive definiteness).
* :mod:`~repro.core.matrices` — QFD matrix constructors, including the
  Hafner prototype-similarity recipe used by the paper's testbed.
"""

from .cholesky import cholesky, cholesky_reference, is_lower_triangular
from .geometry import EllipsoidAxes, qfd_ball_axes, sample_ball_boundary
from .matrices import (
    band_matrix,
    diagonal_matrix,
    gaussian_kernel_matrix,
    identity_matrix,
    laplacian_kernel_matrix,
    prototype_similarity_matrix,
    random_spd_matrix,
)
from .qfd import QuadraticFormDistance
from .qmap import QMap
from .symmetrize import is_symmetric, symmetrize
from .validation import (
    PDRepair,
    ensure_positive_definite,
    is_positive_definite,
    min_eigenvalue,
    require_positive_definite,
)

__all__ = [
    "QuadraticFormDistance",
    "QMap",
    "cholesky",
    "cholesky_reference",
    "is_lower_triangular",
    "symmetrize",
    "is_symmetric",
    "is_positive_definite",
    "require_positive_definite",
    "ensure_positive_definite",
    "min_eigenvalue",
    "PDRepair",
    "identity_matrix",
    "diagonal_matrix",
    "prototype_similarity_matrix",
    "gaussian_kernel_matrix",
    "laplacian_kernel_matrix",
    "band_matrix",
    "random_spd_matrix",
    "EllipsoidAxes",
    "qfd_ball_axes",
    "sample_ball_boundary",
]
