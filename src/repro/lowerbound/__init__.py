"""Lower-bounding baselines the paper compares against (Section 2.3.1).

Rank-k SVD reduction (Hafner / Seidl–Kriegel style), the generalized QBIC
average-color projection bound, and the sequential filter-and-refine search
they plug into.  All are exact (contractive bounds admit false positives,
never false dismissals); their cost drawback versus QMap is measured by
bench E_A1.
"""

from .avg_color import ProjectionBound, average_color_bound
from .filter_refine import ContractiveBound, FilterRefineScan, FilterRefineStats
from .svd_reduction import SVDReduction

__all__ = [
    "SVDReduction",
    "ProjectionBound",
    "average_color_bound",
    "FilterRefineScan",
    "FilterRefineStats",
    "ContractiveBound",
]
