"""Rank-k SVD reduction of the QFD matrix (paper Section 2.3.1).

The transformational approach of Hafner et al. / Seidl & Kriegel: decompose
the symmetric PD matrix ``A = V diag(lambda) V^T`` and keep only the ``k``
largest eigenvalues.  The map ``u -> u V_k sqrt(diag(lambda_k))`` sends the
database into a k-dimensional Euclidean space where

    L2(u_k, v_k) <= QFD_A(u, v),

with equality at ``k = n`` (dropping the non-negative terms
``lambda_i ((u-v) V)_i^2`` for i > k can only shrink the squared form).
The bound is *contractive*, so a filter-and-refine search is exact but may
admit false positives — more of them as ``k`` shrinks, which is exactly the
drawback the paper holds against these methods (and which bench E_A1
measures).  At ``k = n`` this map is an alternative construction of the
QMap transformation itself: an orthogonal change of basis away from the
Cholesky factor.
"""

from __future__ import annotations

import numpy as np

from .._typing import ArrayLike, Matrix, Vector, as_vector, as_vector_batch
from ..core.qfd import QuadraticFormDistance
from ..exceptions import QueryError

__all__ = ["SVDReduction"]


class SVDReduction:
    """Contractive rank-k reduction of a QFD space.

    Parameters
    ----------
    qfd:
        The source distance (or a raw matrix accepted by
        :class:`~repro.core.qfd.QuadraticFormDistance`).
    k:
        Target dimensionality, ``1 <= k <= n``.
    """

    def __init__(self, qfd: QuadraticFormDistance | ArrayLike, k: int) -> None:
        if not isinstance(qfd, QuadraticFormDistance):
            qfd = QuadraticFormDistance(qfd)
        n = qfd.dim
        if not 1 <= k <= n:
            raise QueryError(f"target rank must be in [1, {n}], got {k}")
        self._qfd = qfd
        self._k = k
        eigenvalues, eigenvectors = np.linalg.eigh(qfd.matrix)
        # eigh returns ascending order; keep the k largest.
        order = np.argsort(eigenvalues)[::-1][:k]
        lam = eigenvalues[order]
        vecs = eigenvectors[:, order]
        self._map = vecs * np.sqrt(lam)  # (n, k)
        self._map.setflags(write=False)
        #: Fraction of the total spectrum mass kept by the reduction.
        self.spectrum_coverage = float(lam.sum() / eigenvalues.sum())

    @property
    def qfd(self) -> QuadraticFormDistance:
        """The exact source distance (used for refinement)."""
        return self._qfd

    @property
    def k(self) -> int:
        """Target dimensionality."""
        return self._k

    @property
    def source_dim(self) -> int:
        """Source dimensionality ``n``."""
        return self._qfd.dim

    @property
    def map_matrix(self) -> Matrix:
        """The ``(n, k)`` reduction matrix ``V_k sqrt(diag(lambda_k))``."""
        return self._map

    def transform(self, u: ArrayLike) -> Vector:
        """Map one vector into the reduced space (O(nk))."""
        return as_vector(u, self.source_dim, name="u") @ self._map

    def transform_batch(self, batch: ArrayLike) -> Matrix:
        """Map a whole database into the reduced space."""
        return as_vector_batch(batch, self.source_dim, name="batch") @ self._map

    def lower_bound(self, u_reduced: ArrayLike, v_reduced: ArrayLike) -> float:
        """L2 in the reduced space — a lower bound on the true QFD."""
        a = as_vector(u_reduced, self._k, name="u_reduced")
        b = as_vector(v_reduced, self._k, name="v_reduced")
        return float(np.linalg.norm(a - b))

    def lower_bound_one_to_many(self, q_reduced: ArrayLike, batch_reduced: ArrayLike) -> Vector:
        """Vectorized reduced-space L2 from one query row to many rows."""
        q = as_vector(q_reduced, self._k, name="q_reduced")
        rows = as_vector_batch(batch_reduced, self._k, name="batch_reduced")
        diff = rows - q
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SVDReduction(n={self.source_dim}, k={self._k})"
