"""Filter-and-refine search over a contractive bound (paper Section 2.3.1).

The QBIC-era methods ([14], [18]) run no index at all: a sequential scan
over the *reduced* representations filters with the cheap lower bound, and
only the surviving candidates are refined with the expensive exact QFD.
The search is exact (contraction means no false dismissals) but pays one
exact distance per false positive — the cost that grows as the reduction
gets more aggressive.

:class:`FilterRefineScan` works with any bound object exposing
``transform_batch`` / ``transform`` / ``lower_bound_one_to_many`` and an
exact ``qfd`` — i.e. :class:`~repro.lowerbound.svd_reduction.SVDReduction`
and :class:`~repro.lowerbound.avg_color.ProjectionBound`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from .._typing import ArrayLike, as_vector, as_vector_batch
from ..core.qfd import QuadraticFormDistance
from ..exceptions import EmptyIndexError, QueryError
from ..mam.base import Neighbor, _KnnHeap

__all__ = ["ContractiveBound", "FilterRefineScan", "FilterRefineStats"]


class ContractiveBound(Protocol):
    """The interface shared by SVDReduction and ProjectionBound."""

    @property
    def qfd(self) -> QuadraticFormDistance: ...

    @property
    def source_dim(self) -> int: ...

    def transform(self, u: ArrayLike) -> np.ndarray: ...

    def transform_batch(self, batch: ArrayLike) -> np.ndarray: ...

    def lower_bound_one_to_many(
        self, q_reduced: ArrayLike, batch_reduced: ArrayLike
    ) -> np.ndarray: ...


@dataclass(frozen=True)
class FilterRefineStats:
    """Cost breakdown of one filter-and-refine query.

    Attributes
    ----------
    candidates:
        Objects that survived the lower-bound filter (exact QFD paid).
    hits:
        Objects in the final answer.
    database_size:
        Total objects scanned by the filter.
    """

    candidates: int
    hits: int
    database_size: int

    @property
    def false_positives(self) -> int:
        """Candidates refuted by the exact distance."""
        return self.candidates - self.hits

    @property
    def candidate_ratio(self) -> float:
        """Fraction of the database needing exact refinement."""
        return self.candidates / self.database_size


class FilterRefineScan:
    """Sequential filter-and-refine search in a reduced QFD space.

    Parameters
    ----------
    database:
        ``(m, n)`` histograms in the *source* space.
    bound:
        A contractive bound (SVD reduction or projection bound).
    """

    def __init__(self, database: ArrayLike, bound: ContractiveBound) -> None:
        data = as_vector_batch(database, bound.source_dim, name="database")
        if data.shape[0] == 0:
            raise EmptyIndexError("cannot search an empty database")
        self._data = data
        self._bound = bound
        self._reduced = bound.transform_batch(data)
        self._last_stats: FilterRefineStats | None = None

    @property
    def size(self) -> int:
        """Number of database objects."""
        return self._data.shape[0]

    @property
    def bound(self) -> ContractiveBound:
        """The contractive bound in use."""
        return self._bound

    @property
    def last_stats(self) -> FilterRefineStats | None:
        """Cost breakdown of the most recent query."""
        return self._last_stats

    def range_search(self, query: ArrayLike, radius: float) -> list[Neighbor]:
        """Exact range query via filter-and-refine."""
        if radius < 0.0:
            raise QueryError(f"radius must be non-negative, got {radius}")
        q = as_vector(query, self._bound.source_dim, name="query")
        q_reduced = self._bound.transform(q)
        bounds = self._bound.lower_bound_one_to_many(q_reduced, self._reduced)
        candidates = np.flatnonzero(bounds <= radius)
        exact = self._bound.qfd
        out = []
        for idx in candidates:
            dist = exact(q, self._data[idx])
            if dist <= radius:
                out.append(Neighbor(float(dist), int(idx)))
        out.sort()
        self._last_stats = FilterRefineStats(
            candidates=int(candidates.size), hits=len(out), database_size=self.size
        )
        return out

    def knn_search(self, query: ArrayLike, k: int) -> list[Neighbor]:
        """Exact kNN via ascending-lower-bound refinement."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        k = min(k, self.size)
        q = as_vector(query, self._bound.source_dim, name="query")
        q_reduced = self._bound.transform(q)
        bounds = self._bound.lower_bound_one_to_many(q_reduced, self._reduced)
        order = np.argsort(bounds, kind="stable")
        exact = self._bound.qfd
        heap = _KnnHeap(k)
        refined = 0
        for idx in order:
            if bounds[idx] > heap.radius:
                break
            heap.offer(exact(q, self._data[idx]), int(idx))
            refined += 1
        result = heap.neighbors()
        self._last_stats = FilterRefineStats(
            candidates=refined, hits=len(result), database_size=self.size
        )
        return result
