"""QBIC-style average-color lower bound, generalized (paper Section 2.3.1).

Faloutsos et al. (the paper's reference [14]) filter QFD range queries on
RGB histograms with a 3-dimensional bound: the distance between the images'
*average colors* — scaled by a constant — never exceeds the full histogram
QFD.  The classic result is specific to RGB; here it is generalized to any
QFD matrix and any linear feature map.

Given a projection ``P`` (each histogram maps to ``u P^T``, e.g. ``P`` =
the bin prototype colors, making ``u P^T`` the image's average color), the
largest constant ``c`` with

    QFD_A(u, v)^2 >= c * || (u - v) P^T ||^2     for all u, v

is ``c* = 1 / lambda_max(P A^{-1} P^T)``: the requirement is
``A - c P^T P`` positive-semidefinite, i.e. ``c <= 1 / lambda_max(A^{-1/2}
P^T P A^{-1/2})``, and that largest eigenvalue equals the one of
``P A^{-1} P^T``.  The map ``u -> sqrt(c*) u P^T`` is then contractive and
drives the same filter-and-refine machinery as the SVD reduction.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from .._typing import ArrayLike, Matrix, Vector, as_vector, as_vector_batch
from ..core.qfd import QuadraticFormDistance
from ..exceptions import DimensionMismatchError, MatrixError

__all__ = ["ProjectionBound", "average_color_bound"]


class ProjectionBound:
    """Optimal contractive bound through a fixed linear projection.

    Parameters
    ----------
    qfd:
        The source distance (or raw QFD matrix).
    projection:
        ``(k, n)`` matrix ``P``; histograms map to ``u P^T`` in R^k.
    """

    def __init__(self, qfd: QuadraticFormDistance | ArrayLike, projection: ArrayLike) -> None:
        if not isinstance(qfd, QuadraticFormDistance):
            qfd = QuadraticFormDistance(qfd)
        proj = np.asarray(projection, dtype=np.float64)
        if proj.ndim != 2:
            raise DimensionMismatchError(f"projection must be 2-D, got shape {proj.shape}")
        if proj.shape[1] != qfd.dim:
            raise DimensionMismatchError(
                f"projection has {proj.shape[1]} columns, QFD space has dim {qfd.dim}"
            )
        if not np.isfinite(proj).all():
            raise MatrixError("projection contains non-finite entries")
        self._qfd = qfd
        self._projection = proj
        # c* = 1 / lambda_max(P A^{-1} P^T); solve A X = P^T instead of
        # forming the inverse.
        x = scipy.linalg.solve(qfd.matrix, proj.T, assume_a="pos")
        gram = proj @ x
        lam_max = float(np.linalg.eigvalsh((gram + gram.T) / 2.0)[-1])
        if lam_max <= 0.0:
            raise MatrixError("projection is identically zero; no usable bound")
        self._scale = 1.0 / np.sqrt(lam_max)
        self._map = self._scale * proj.T  # (n, k)
        self._map.setflags(write=False)

    @property
    def qfd(self) -> QuadraticFormDistance:
        """The exact source distance (used for refinement)."""
        return self._qfd

    @property
    def k(self) -> int:
        """Dimensionality of the projected space."""
        return self._projection.shape[0]

    @property
    def source_dim(self) -> int:
        """Source dimensionality ``n``."""
        return self._qfd.dim

    @property
    def scale(self) -> float:
        """The optimal contraction constant ``sqrt(c*)``."""
        return self._scale

    @property
    def map_matrix(self) -> Matrix:
        """The ``(n, k)`` contractive map ``sqrt(c*) P^T``."""
        return self._map

    def transform(self, u: ArrayLike) -> Vector:
        """Map one histogram to its scaled projected feature."""
        return as_vector(u, self.source_dim, name="u") @ self._map

    def transform_batch(self, batch: ArrayLike) -> Matrix:
        """Map a whole database."""
        return as_vector_batch(batch, self.source_dim, name="batch") @ self._map

    def lower_bound(self, u_reduced: ArrayLike, v_reduced: ArrayLike) -> float:
        """L2 in the projected space — a lower bound on the true QFD."""
        a = as_vector(u_reduced, self.k, name="u_reduced")
        b = as_vector(v_reduced, self.k, name="v_reduced")
        return float(np.linalg.norm(a - b))

    def lower_bound_one_to_many(self, q_reduced: ArrayLike, batch_reduced: ArrayLike) -> Vector:
        """Vectorized projected-space L2 from one query to many rows."""
        q = as_vector(q_reduced, self.k, name="q_reduced")
        rows = as_vector_batch(batch_reduced, self.k, name="batch_reduced")
        diff = rows - q
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def average_color_bound(
    qfd: QuadraticFormDistance | ArrayLike, prototypes: ArrayLike
) -> ProjectionBound:
    """The classic QBIC average-color bound.

    *prototypes* is the ``(n, 3)`` array of bin colors (e.g.
    :func:`repro.color.rgb_bin_prototypes`); a histogram's projection
    ``u P^T`` with ``P = prototypes^T`` is exactly its average color.
    """
    proto = np.asarray(prototypes, dtype=np.float64)
    if proto.ndim != 2:
        raise DimensionMismatchError(
            f"prototypes must be (n, c), got shape {proto.shape}"
        )
    return ProjectionBound(qfd, proto.T)
