"""repro — reproduction of *"On (not) indexing quadratic form distance by
metric access methods"* (Skopal, Bartoš & Lokoč, EDBT 2011).

The headline result: a quadratic form distance with a **static** matrix is
never a black-box metric to be indexed raw — the Cholesky factor of its
matrix maps the QFD space homeomorphically onto a plain Euclidean space
with distances preserved *exactly*, cutting every distance evaluation from
O(n^2) to O(n).

Quick start::

    import numpy as np
    from repro import QuadraticFormDistance, QMapModel, QFDModel

    a = np.array([[1.0, 0.0, 0.0],
                  [0.0, 1.0, 0.5],
                  [0.0, 0.5, 1.0]])        # the paper's RGB example
    database = np.random.default_rng(0).random((1000, 3))

    model = QMapModel(a)                   # factor once ...
    index = model.build_index("mtree", database)
    hits = index.knn_search(database[0], k=5)   # ... query in O(n) distances

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — QFD, Cholesky, the QMap transform, matrix builders
* :mod:`repro.distances` — Minkowski family, SQFD, counting, metric checks
* :mod:`repro.color` / :mod:`repro.datasets` — the testbed substrate
* :mod:`repro.mam` / :mod:`repro.sam` — access methods
* :mod:`repro.lowerbound` — the Section 2.3.1 baselines
* :mod:`repro.dynamic` — MindReader and feature signatures (dynamic QFD)
* :mod:`repro.models` — the QFD-vs-QMap pipelines
* :mod:`repro.bench` — the experiment harness
"""

from .core.qfd import QuadraticFormDistance
from .core.qmap import QMap
from .exceptions import ReproError
from .models.qfd_model import QFDModel
from .models.qmap_model import QMapModel

__version__ = "1.0.0"

__all__ = [
    "QuadraticFormDistance",
    "QMap",
    "QFDModel",
    "QMapModel",
    "ReproError",
    "__version__",
]
