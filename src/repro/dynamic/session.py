"""A full relevance-feedback retrieval session (MindReader + index policy).

Ties together the pieces the paper's Sections 1.2.1 and 2.2 discuss but no
single prior module owns: a user iteratively scores results, MindReader
refits the QFD matrix and query point, and the session decides what to do
with the now-stale index.  Two maintenance policies are provided:

* ``"qmap"`` — re-factor the new matrix and re-transform the database
  (O(n^3 + m n^2) arithmetic, **no** distance computations), then rebuild
  the chosen MAM over Euclidean vectors at O(n) per distance;
* ``"qfd"`` — rebuild the MAM directly under the new QFD at O(n^2) per
  distance (the configuration the paper advises against).

The session records the maintenance cost of every round, making the
trade-off measurable — see ``examples/relevance_feedback.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._typing import ArrayLike, as_vector_batch
from ..exceptions import QueryError
from ..mam.base import Neighbor
from ..models import BuiltIndex, QFDModel, QMapModel
from .mindreader import estimate_distance, matrix_changed

__all__ = ["FeedbackRound", "RelevanceFeedbackSession"]


@dataclass(frozen=True)
class FeedbackRound:
    """Record of one feedback round's retrieval and maintenance cost."""

    round_no: int
    results: list[Neighbor]
    matrix_was_stale: bool
    maintenance_seconds: float
    maintenance_distances: int
    maintenance_transforms: int


@dataclass
class RelevanceFeedbackSession:
    """Iterative QFD retrieval driven by user relevance scores.

    Parameters
    ----------
    database:
        ``(m, n)`` searchable vectors.
    method:
        Registered access method name to (re)build each round.
    model:
        ``"qmap"`` (default) or ``"qfd"`` — the index maintenance policy.
    method_kwargs:
        Forwarded to the access method constructor.
    """

    database: np.ndarray
    method: str = "pivot-table"
    model: str = "qmap"
    method_kwargs: dict = field(default_factory=dict)
    _matrix: np.ndarray | None = None
    _index: BuiltIndex | None = None
    _history: list[FeedbackRound] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.database = as_vector_batch(self.database, name="database")
        if self.model not in ("qmap", "qfd"):
            raise QueryError(f"model must be 'qmap' or 'qfd', got {self.model!r}")
        if self._matrix is None:
            self._matrix = np.eye(self.database.shape[1])

    @property
    def matrix(self) -> np.ndarray:
        """The current QFD matrix (starts at identity = plain Euclidean)."""
        assert self._matrix is not None
        return self._matrix

    @property
    def history(self) -> list[FeedbackRound]:
        """Per-round records, in order."""
        return list(self._history)

    def _rebuild(self) -> tuple[BuiltIndex, float, int, int]:
        import time

        model_cls = QMapModel if self.model == "qmap" else QFDModel
        start = time.perf_counter()
        index = model_cls(self.matrix).build_index(
            self.method, self.database, **self.method_kwargs
        )
        elapsed = time.perf_counter() - start
        return (
            index,
            elapsed,
            index.build_costs.distance_computations,
            index.build_costs.transforms,
        )

    def search(self, query: ArrayLike, k: int = 10) -> list[Neighbor]:
        """kNN under the current matrix, (re)building the index if stale."""
        stale = self._index is None or matrix_changed(
            self._index_matrix, self.matrix
        )
        seconds = distances = transforms = 0
        if stale:
            self._index, seconds, distances, transforms = self._rebuild()
            self._index_matrix = self.matrix.copy()
        results = self._index.knn_search(query, k)
        self._history.append(
            FeedbackRound(
                round_no=len(self._history) + 1,
                results=results,
                matrix_was_stale=bool(stale),
                maintenance_seconds=float(seconds),
                maintenance_distances=int(distances),
                maintenance_transforms=int(transforms),
            )
        )
        return results

    def feedback(self, example_indices: ArrayLike, scores: ArrayLike) -> np.ndarray:
        """Incorporate user scores; returns the new optimal query point.

        Refits the MindReader estimate over the referenced database rows
        and installs the inferred matrix (invalidating the index for the
        next :meth:`search`).
        """
        idx = np.asarray(example_indices, dtype=np.int64)
        if idx.ndim != 1 or idx.size < 2:
            raise QueryError("feedback needs at least two scored examples")
        if idx.min(initial=0) < 0 or idx.max(initial=0) >= self.database.shape[0]:
            raise QueryError("feedback indices out of database range")
        estimate = estimate_distance(self.database[idx], scores)
        self._matrix = estimate.distance.matrix
        return estimate.query_point

    def total_maintenance_seconds(self) -> float:
        """Index maintenance time summed over all rounds."""
        return sum(r.maintenance_seconds for r in self._history)
