"""Feature-signature extraction for the SQFD (paper Section 1.2.1).

Beecks et al. (the paper's reference [5]) replace fixed histograms by
*feature signatures*: per-image sets of cluster centroids with weights,
obtained by clustering the image's pixels in a feature space (here color,
optionally augmented with position).  Signatures of different images have
different lengths and different centroids — which is why the SQFD needs a
dynamic matrix and why the QMap transformation does not apply to it.

The clustering is a small, dependency-free k-means (Lloyd's algorithm with
k-means++ seeding) implemented over numpy.
"""

from __future__ import annotations

import numpy as np

from ..distances.sqfd import FeatureSignature
from ..exceptions import DimensionMismatchError, QueryError

__all__ = ["kmeans", "extract_signature"]


def kmeans(
    points: np.ndarray,
    k: int,
    *,
    max_iter: int = 50,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means with k-means++ seeding.

    Returns ``(centroids, labels)``.  Empty clusters are re-seeded on the
    farthest point, so exactly ``k`` centroids come back whenever the data
    has at least ``k`` distinct points (fewer otherwise).
    """
    data = np.asarray(points, dtype=np.float64)
    if data.ndim != 2:
        raise DimensionMismatchError(f"points must be (m, c), got shape {data.shape}")
    m = data.shape[0]
    if not 1 <= k <= m:
        raise QueryError(f"k must be in [1, {m}], got {k}")
    rng = np.random.default_rng(0) if rng is None else rng

    # k-means++ seeding.
    centroids = [data[rng.integers(0, m)]]
    closest_sq = np.sum((data - centroids[0]) ** 2, axis=1)
    while len(centroids) < k:
        total = closest_sq.sum()
        if total <= 0.0:
            break  # fewer than k distinct points
        probs = closest_sq / total
        centroids.append(data[rng.choice(m, p=probs)])
        dist_sq = np.sum((data - centroids[-1]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    centers = np.array(centroids)

    labels = np.zeros(m, dtype=np.int64)
    for _ in range(max_iter):
        diff = data[:, None, :] - centers[None, :, :]
        dist_sq = np.sum(diff * diff, axis=2)
        new_labels = np.argmin(dist_sq, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(centers.shape[0]):
            members = data[labels == j]
            if members.shape[0] > 0:
                centers[j] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster on the farthest point.
                farthest = int(np.argmax(np.min(dist_sq, axis=1)))
                centers[j] = data[farthest]
    return centers, labels


def extract_signature(
    image: np.ndarray,
    n_clusters: int = 8,
    *,
    include_position: bool = True,
    max_pixels: int = 2048,
    rng: np.random.Generator | None = None,
) -> FeatureSignature:
    """Cluster an image's pixels into a feature signature.

    Parameters
    ----------
    image:
        ``(h, w, 3)`` RGB array with components in [0, 1].
    n_clusters:
        Target signature size (actual size can be smaller for flat images).
    include_position:
        Append normalized (x, y) to each pixel's feature (the common
        7-dimensional variant uses Lab + position; we use RGB + position).
    max_pixels:
        Subsample cap keeping extraction fast on large images.
    rng:
        Randomness for subsampling and seeding.
    """
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise DimensionMismatchError(f"expected (h, w, 3) image, got shape {arr.shape}")
    rng = np.random.default_rng(0) if rng is None else rng
    h, w = arr.shape[:2]
    ys, xs = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
    features = arr.reshape(-1, 3)
    if include_position:
        pos = np.column_stack([xs.ravel() / max(w - 1, 1), ys.ravel() / max(h - 1, 1)])
        features = np.column_stack([features, pos])
    if features.shape[0] > max_pixels:
        picks = rng.choice(features.shape[0], size=max_pixels, replace=False)
        features = features[picks]
    k = min(n_clusters, features.shape[0])
    centers, labels = kmeans(features, k, rng=rng)
    counts = np.bincount(labels, minlength=centers.shape[0]).astype(np.float64)
    keep = counts > 0
    weights = counts[keep] / counts.sum()
    return FeatureSignature.create(centers[keep], weights)
