"""Dynamic QFD systems (paper Section 1.2.1) — the "(not)" side.

MindReader-style relevance feedback changes the QFD matrix per query, and
the signature quadratic form distance builds a fresh matrix per compared
pair.  Both defeat a static QMap factorization and invalidate MAM indexes;
this package implements them so the examples can demonstrate exactly that
boundary of the paper's approach.
"""

from .mindreader import MindReaderEstimate, estimate_distance, matrix_changed
from .session import FeedbackRound, RelevanceFeedbackSession
from .signatures import extract_signature, kmeans

__all__ = [
    "MindReaderEstimate",
    "estimate_distance",
    "matrix_changed",
    "extract_signature",
    "kmeans",
    "RelevanceFeedbackSession",
    "FeedbackRound",
]
