"""MindReader — dynamic QFD from relevance feedback (paper Section 1.2.1).

Ishikawa, Subramanya & Faloutsos (the paper's reference [20]) infer the
distance function a user has in mind from scored examples: given vectors
``x_i`` with positive relevance scores ``pi_i``, the optimal query point is
the score-weighted centroid and the optimal QFD matrix is (proportional to)
the inverse of the score-weighted covariance — dimensions along which the
relevant examples agree get high weight, correlated deviations are
discounted via the off-diagonal terms.

This is the paper's canonical example of a *dynamic* QFD matrix: it changes
from query to query, so a MAM index built for one matrix is invalidated by
the next round of feedback — the "(not)" side of the paper's title.
:func:`matrix_changed` makes that staleness check explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._typing import ArrayLike, as_vector, as_vector_batch
from ..core.qfd import QuadraticFormDistance
from ..exceptions import QueryError

__all__ = ["MindReaderEstimate", "estimate_distance", "matrix_changed"]


@dataclass(frozen=True)
class MindReaderEstimate:
    """Result of one MindReader feedback round.

    Attributes
    ----------
    query_point:
        The score-weighted centroid — the "ideal" query vector.
    distance:
        The inferred :class:`~repro.core.qfd.QuadraticFormDistance`.
    regularization:
        Diagonal term added to the covariance before inversion (0 when the
        examples already span the space).
    """

    query_point: np.ndarray
    distance: QuadraticFormDistance
    regularization: float


def estimate_distance(
    examples: ArrayLike,
    scores: ArrayLike,
    *,
    regularization: float = 1e-6,
) -> MindReaderEstimate:
    """Infer the user's implied query point and QFD matrix.

    Parameters
    ----------
    examples:
        ``(m, n)`` scored example vectors (``m >= 2``).
    scores:
        ``(m,)`` strictly positive relevance scores.
    regularization:
        Ridge term keeping the weighted covariance invertible when the
        examples do not span the space (always needed for ``m <= n``).

    Notes
    -----
    Following Ishikawa et al., the matrix is normalized to unit determinant
    (``det(A) = 1``) so successive feedback rounds are comparable.
    """
    x = as_vector_batch(examples, name="examples")
    pi = as_vector(scores, x.shape[0], name="scores")
    if x.shape[0] < 2:
        raise QueryError("MindReader needs at least two scored examples")
    if np.any(pi <= 0.0):
        raise QueryError("relevance scores must be strictly positive")
    if regularization < 0.0:
        raise QueryError("regularization must be non-negative")

    total = pi.sum()
    query_point = (pi @ x) / total
    centered = x - query_point
    cov = (centered.T * pi) @ centered / total
    ridge = regularization
    eye = np.eye(x.shape[1])
    # Escalate the ridge until the covariance inverts to a PD matrix.
    for _ in range(60):
        try:
            matrix = np.linalg.inv(cov + ridge * eye)
            matrix = (matrix + matrix.T) / 2.0
            if np.all(np.linalg.eigvalsh(matrix) > 0.0):
                break
        except np.linalg.LinAlgError:
            pass
        ridge = max(ridge * 10.0, 1e-12)
    else:  # pragma: no cover - 60 decades of ridge always suffice
        raise QueryError("could not regularize the weighted covariance")

    # det-normalization (Ishikawa et al.): scale so det(A) = 1.
    sign, logdet = np.linalg.slogdet(matrix)
    if sign <= 0:  # pragma: no cover - PD implies positive determinant
        raise QueryError("inferred matrix is not positive-definite")
    matrix = matrix * np.exp(-logdet / x.shape[1])
    return MindReaderEstimate(
        query_point=query_point,
        distance=QuadraticFormDistance(matrix),
        regularization=ridge,
    )


def matrix_changed(
    indexed: QuadraticFormDistance | ArrayLike,
    current: QuadraticFormDistance | ArrayLike,
    *,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> bool:
    """Whether a MAM index built under *indexed* is stale under *current*.

    "Changing the QFD matrix A would result in a different distance
    function than the one used for indexing.  Such a change would require a
    reorganization of the metric index" (paper Section 2.2).  Callers
    should rebuild (or re-transform, in the QMap model) when this returns
    true.
    """
    a = indexed.matrix if isinstance(indexed, QuadraticFormDistance) else np.asarray(indexed)
    b = current.matrix if isinstance(current, QuadraticFormDistance) else np.asarray(current)
    if a.shape != b.shape:
        return True
    return not np.allclose(a, b, rtol=rtol, atol=atol)
