"""TriGen-style distance modifiers (paper reference [27]).

Skopal's unified framework observes that applying an increasing function
``f`` with ``f(0) = 0`` to a metric changes the *distance distribution*
without changing any kNN ordering:

* a **concave** ``f`` (e.g. ``d -> d^(1/w)``, ``w >= 1``) can only widen
  triangles, so the result is again a metric — but its distribution is
  *more* concentrated (higher intrinsic dimensionality), which makes exact
  indexing slower;
* a **convex** ``f`` (e.g. ``d -> d^w``) spreads the distribution (lower
  intrinsic dimensionality, better pruning) but may break the triangle
  inequality — searches over the modified distance become approximate,
  with an error rate governed by how often triangles actually break.

This module implements the power-modifier family, the metric-preservation
facts, and a tuner that finds the largest convex exponent whose measured
triangle-violation rate stays under a budget — the essence of TriGen,
driving ablation bench E_A10.

Because kNN *orderings* are preserved by any increasing ``f``, an index
built over the modified distance answers kNN queries whose results can be
re-ranked in the original distance for free; range radii translate through
``f`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ._typing import ArrayLike, as_vector_batch
from .exceptions import QueryError

__all__ = [
    "PowerModifier",
    "ModifiedDistance",
    "triangle_violation_rate",
    "tune_convex_exponent",
]


@dataclass(frozen=True)
class PowerModifier:
    """The modifier ``f(d) = d ** exponent`` (concave for exponent < 1).

    ``exponent < 1`` (concave): metric-preserving, concentrates distances.
    ``exponent == 1``: identity.
    ``exponent > 1`` (convex): spreads distances, may break triangles.
    """

    exponent: float

    def __post_init__(self) -> None:
        if self.exponent <= 0.0:
            raise QueryError(f"exponent must be positive, got {self.exponent}")

    def __call__(self, value: float) -> float:
        return float(value) ** self.exponent

    def inverse(self, value: float) -> float:
        """Map a modified distance back to the original scale."""
        return float(value) ** (1.0 / self.exponent)

    @property
    def is_metric_preserving(self) -> bool:
        """Concave power modifiers (exponent <= 1) always yield a metric."""
        return self.exponent <= 1.0


class ModifiedDistance:
    """A base metric composed with a :class:`PowerModifier`.

    Increasing modifiers preserve kNN orderings exactly; range queries at
    original-scale radius ``r`` translate to radius ``f(r)`` in the
    modified space.  Exposes ``one_to_many`` when the base distance does,
    so counting and vectorized paths keep working.
    """

    def __init__(
        self,
        base: Callable[[np.ndarray, np.ndarray], float],
        modifier: PowerModifier,
    ) -> None:
        self._base = base
        self._modifier = modifier
        self._base_one_to_many = getattr(base, "one_to_many", None)

    @property
    def modifier(self) -> PowerModifier:
        """The modifier in effect."""
        return self._modifier

    @property
    def base(self) -> Callable[[np.ndarray, np.ndarray], float]:
        """The unmodified distance."""
        return self._base

    def __call__(self, u: np.ndarray, v: np.ndarray) -> float:
        return self._modifier(self._base(u, v))

    def one_to_many(self, q: np.ndarray, rows: np.ndarray) -> np.ndarray:
        if callable(self._base_one_to_many):
            base_values = np.asarray(self._base_one_to_many(q, rows), dtype=np.float64)
        else:
            base_values = np.array([self._base(q, row) for row in rows])
        return np.power(base_values, self._modifier.exponent)

    def translate_radius(self, radius: float) -> float:
        """Original-scale radius -> modified-space radius."""
        if radius < 0.0:
            raise QueryError(f"radius must be non-negative, got {radius}")
        return self._modifier(radius)


def triangle_violation_rate(
    data: ArrayLike,
    distance: Callable[[np.ndarray, np.ndarray], float],
    *,
    n_triples: int = 1_000,
    rng: np.random.Generator | None = None,
) -> float:
    """Fraction of sampled triples violating the triangle inequality.

    TriGen's "T-error": the operational measure of how approximate a
    MAM over the (possibly non-metric) distance will be.
    """
    rows = as_vector_batch(data, name="data")
    m = rows.shape[0]
    if m < 3:
        raise QueryError("need at least three objects")
    if n_triples < 1:
        raise QueryError(f"n_triples must be >= 1, got {n_triples}")
    rng = np.random.default_rng(0) if rng is None else rng
    violations = 0
    checked = 0
    for _ in range(n_triples):
        i, j, k = rng.choice(m, size=3, replace=False)
        d_ij = distance(rows[i], rows[j])
        d_jk = distance(rows[j], rows[k])
        d_ik = distance(rows[i], rows[k])
        checked += 1
        slack = 1e-12 * max(1.0, d_ij, d_jk, d_ik)
        if (
            d_ik > d_ij + d_jk + slack
            or d_ij > d_ik + d_jk + slack
            or d_jk > d_ij + d_ik + slack
        ):
            violations += 1
    return violations / checked


def tune_convex_exponent(
    data: ArrayLike,
    base: Callable[[np.ndarray, np.ndarray], float],
    *,
    max_violation_rate: float = 0.01,
    exponents: ArrayLike = (1.0, 1.25, 1.5, 2.0, 3.0, 4.0),
    n_triples: int = 500,
    rng: np.random.Generator | None = None,
) -> tuple[PowerModifier, float]:
    """TriGen-style tuning: the largest exponent within the error budget.

    Returns ``(modifier, measured_violation_rate)``.  Exponent 1.0 (the
    identity, always metric) is the fallback when every convex candidate
    breaks too many triangles.
    """
    if not 0.0 <= max_violation_rate <= 1.0:
        raise QueryError("max_violation_rate must be in [0, 1]")
    rng = np.random.default_rng(0) if rng is None else rng
    candidates = sorted(float(e) for e in np.asarray(exponents, dtype=np.float64))
    if candidates[0] < 1.0:
        raise QueryError("convex tuning starts at exponent 1.0; use concave directly")
    best = PowerModifier(1.0)
    best_rate = 0.0
    for exponent in candidates:
        modifier = PowerModifier(exponent)
        modified = ModifiedDistance(base, modifier)
        rate = triangle_violation_rate(
            data, modified, n_triples=n_triples, rng=np.random.default_rng(rng.integers(2**31))
        )
        if rate <= max_violation_rate:
            best, best_rate = modifier, rate
        else:
            break  # rates grow with the exponent; no point going on
    return best, best_rate
