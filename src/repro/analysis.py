"""Distance-distribution analysis (paper Section 2.2).

MAM performance is governed not by the embedding dimensionality but by the
*distance distribution* — specifically the intrinsic dimensionality

    rho = mu^2 / (2 sigma^2)

of Chávez et al. (the paper's reference [12]): concentrated distributions
(large rho) leave the triangle inequality little room to prune.

Because the QMap transformation preserves distances *exactly*, the QFD
space and its Euclidean image have the *same* distance distribution and
hence the same intrinsic dimensionality — the formal reason the paper can
promise "the number of distance computations spent on indexing/querying in
both models is the same, whatever MAM is used" (Section 4).  The tests and
ablation bench E_A7 verify this empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ._typing import ArrayLike, as_vector_batch
from .exceptions import QueryError

__all__ = [
    "sample_distances",
    "DistanceDistribution",
    "analyze_distances",
    "intrinsic_dimensionality",
]


def sample_distances(
    data: ArrayLike,
    distance: Callable[[np.ndarray, np.ndarray], float],
    *,
    n_pairs: int = 2_000,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Distances of *n_pairs* random distinct object pairs from *data*."""
    rows = as_vector_batch(data, name="data")
    m = rows.shape[0]
    if m < 2:
        raise QueryError("need at least two objects to sample pair distances")
    if n_pairs < 1:
        raise QueryError(f"n_pairs must be >= 1, got {n_pairs}")
    rng = np.random.default_rng(0) if rng is None else rng
    first = rng.integers(0, m, size=n_pairs)
    second = rng.integers(0, m - 1, size=n_pairs)
    second = np.where(second >= first, second + 1, second)  # distinct pairs
    one_to_many = getattr(distance, "one_to_many", None)
    if callable(one_to_many):
        # Group by first index to batch evaluations where possible.
        out = np.empty(n_pairs, dtype=np.float64)
        for i in range(n_pairs):
            out[i] = float(distance(rows[first[i]], rows[second[i]]))
        return out
    return np.array(
        [float(distance(rows[i], rows[j])) for i, j in zip(first, second)],
        dtype=np.float64,
    )


@dataclass(frozen=True)
class DistanceDistribution:
    """Summary statistics of a sampled distance distribution."""

    mean: float
    std: float
    minimum: float
    maximum: float
    intrinsic_dimensionality: float
    histogram: np.ndarray
    bin_edges: np.ndarray

    def concentration(self) -> float:
        """Relative spread ``sigma / mu`` — small values mean a concentrated
        (hard to index) metric space."""
        if self.mean == 0.0:
            return 0.0
        return self.std / self.mean


def intrinsic_dimensionality(distances: ArrayLike) -> float:
    """Chávez et al.'s estimator ``rho = mu^2 / (2 sigma^2)``."""
    arr = np.asarray(distances, dtype=np.float64)
    if arr.size < 2:
        raise QueryError("need at least two distances")
    mu = float(arr.mean())
    var = float(arr.var())
    if var == 0.0:
        return float("inf") if mu > 0.0 else 0.0
    return mu * mu / (2.0 * var)


def analyze_distances(distances: ArrayLike, *, bins: int = 32) -> DistanceDistribution:
    """Full distribution summary of a sampled distance array."""
    arr = np.asarray(distances, dtype=np.float64)
    if arr.size < 2:
        raise QueryError("need at least two distances")
    if bins < 1:
        raise QueryError(f"bins must be >= 1, got {bins}")
    histogram, edges = np.histogram(arr, bins=bins)
    return DistanceDistribution(
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        intrinsic_dimensionality=intrinsic_dimensionality(arr),
        histogram=histogram,
        bin_edges=edges,
    )
