"""Minkowski (Lp) distances (paper Section 1.1).

The paper's Section 1.1 introduces the Lp family

    Lp(u, v) = (sum_i |u_i - v_i|^p)^(1/p),   p >= 1

with the Manhattan (L1), Euclidean (L2) and Chessboard (L-infinity)
members used in multimedia retrieval, plus the weighted Euclidean variant
that a diagonal QFD matrix reduces to.  All are O(n) per evaluation —
the qualitative advantage the QMap model buys for the QFD.
"""

from __future__ import annotations

import numpy as np

from .._typing import ArrayLike, Vector, as_vector, as_vector_batch
from ..exceptions import QueryError

__all__ = [
    "minkowski",
    "manhattan",
    "euclidean",
    "chessboard",
    "weighted_euclidean",
    "euclidean_one_to_many",
    "MinkowskiDistance",
    "WeightedEuclidean",
]


def minkowski(u: ArrayLike, v: ArrayLike, p: float) -> float:
    """General Lp distance for ``p >= 1`` (``p = inf`` gives the chessboard)."""
    if p < 1.0:
        raise QueryError(f"Minkowski order must satisfy p >= 1, got {p}")
    a = as_vector(u, name="u")
    b = as_vector(v, a.shape[0], name="v")
    diff = np.abs(a - b)
    if np.isinf(p):
        return float(diff.max(initial=0.0))
    return float(np.power(np.power(diff, p).sum(), 1.0 / p))


def manhattan(u: ArrayLike, v: ArrayLike) -> float:
    """L1 (Manhattan) distance."""
    a = as_vector(u, name="u")
    b = as_vector(v, a.shape[0], name="v")
    return float(np.abs(a - b).sum())


def euclidean(u: ArrayLike, v: ArrayLike) -> float:
    """L2 (Euclidean) distance — the target space of the QMap model."""
    a = as_vector(u, name="u")
    b = as_vector(v, a.shape[0], name="v")
    return float(np.linalg.norm(a - b))


def chessboard(u: ArrayLike, v: ArrayLike) -> float:
    """L-infinity (Chessboard) distance."""
    a = as_vector(u, name="u")
    b = as_vector(v, a.shape[0], name="v")
    return float(np.abs(a - b).max(initial=0.0))


def weighted_euclidean(u: ArrayLike, v: ArrayLike, weights: ArrayLike) -> float:
    """Weighted L2 — what the QFD degenerates to for a diagonal matrix."""
    a = as_vector(u, name="u")
    b = as_vector(v, a.shape[0], name="v")
    w = as_vector(weights, a.shape[0], name="weights")
    if np.any(w < 0.0):
        raise QueryError("weights must be non-negative")
    diff = a - b
    return float(np.sqrt(np.sum(w * diff * diff)))


def euclidean_one_to_many(q: ArrayLike, batch: ArrayLike) -> Vector:
    """Vectorized L2 distances from *q* to every row of *batch*."""
    query = as_vector(q, name="q")
    rows = as_vector_batch(batch, query.shape[0], name="batch")
    diff = rows - query
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


class MinkowskiDistance:
    """Callable Lp distance with a fixed order *p*.

    Useful where an access method expects a two-argument distance function.
    """

    def __init__(self, p: float) -> None:
        if p < 1.0:
            raise QueryError(f"Minkowski order must satisfy p >= 1, got {p}")
        self._p = float(p)

    @property
    def p(self) -> float:
        """The Minkowski order."""
        return self._p

    def __call__(self, u: ArrayLike, v: ArrayLike) -> float:
        return minkowski(u, v, self._p)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MinkowskiDistance(p={self._p})"


class WeightedEuclidean:
    """Callable weighted L2 distance with fixed strictly-positive weights."""

    def __init__(self, weights: ArrayLike) -> None:
        w = as_vector(weights, name="weights")
        if np.any(w <= 0.0):
            raise QueryError("weights must be strictly positive for a metric")
        self._weights = w
        self._weights.setflags(write=False)

    @property
    def weights(self) -> Vector:
        """The per-dimension weights (read-only)."""
        return self._weights

    def __call__(self, u: ArrayLike, v: ArrayLike) -> float:
        return weighted_euclidean(u, v, self._weights)

    def one_to_many(self, q: ArrayLike, batch: ArrayLike) -> Vector:
        """Vectorized weighted-L2 distances from *q* to each row of *batch*."""
        query = as_vector(q, self._weights.shape[0], name="q")
        rows = as_vector_batch(batch, self._weights.shape[0], name="batch")
        diff = rows - query
        return np.sqrt(np.einsum("ij,j,ij->i", diff, self._weights, diff))
