"""Empirical validation of metric postulates.

MAMs require the black-box distance to be a metric (paper Section 2.2); the
QFD qualifies exactly when its matrix is strictly positive-definite
(Section 3.2.3).  This module samples object pairs/triples and checks the
four postulates — non-negativity, identity of indiscernibles, symmetry and
the triangle inequality — reporting every violation it finds.  It powers the
property-based tests and is useful for vetting user-supplied distances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..exceptions import QueryError

__all__ = [
    "MetricViolation",
    "MetricReport",
    "check_metric_postulates",
    "check_ptolemy_inequality",
    "check_ptolemy_matrix",
]

#: Absolute slack allowed before a numeric discrepancy counts as a violation.
_DEFAULT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class MetricViolation:
    """One observed violation of a metric postulate.

    Attributes
    ----------
    postulate:
        One of ``"non_negativity"``, ``"identity"``, ``"symmetry"``,
        ``"triangle"``, ``"ptolemy"``.
    indices:
        Indices of the objects involved (2 for pairwise postulates,
        3 for the triangle inequality, 4 for Ptolemy's inequality).
    magnitude:
        How far past the tolerance the violation went.
    """

    postulate: str
    indices: tuple[int, ...]
    magnitude: float


@dataclass
class MetricReport:
    """Aggregated result of :func:`check_metric_postulates`."""

    checked_pairs: int = 0
    checked_triples: int = 0
    checked_quadruples: int = 0
    violations: list[MetricViolation] = field(default_factory=list)

    @property
    def is_metric(self) -> bool:
        """Whether no violation was observed on the sampled objects."""
        return not self.violations

    def worst(self) -> MetricViolation | None:
        """The largest-magnitude violation, or ``None``."""
        if not self.violations:
            return None
        return max(self.violations, key=lambda v: v.magnitude)


def check_metric_postulates(
    distance: Callable[[object, object], float],
    objects: Sequence[object],
    *,
    max_triples: int = 2000,
    tolerance: float = _DEFAULT_TOLERANCE,
    rng: np.random.Generator | None = None,
) -> MetricReport:
    """Check metric postulates of *distance* over the given *objects*.

    All pairs are checked for non-negativity, symmetry and identity (via
    ``d(o, o) == 0``); triangle inequalities are sampled up to *max_triples*
    triples to keep the cost cubic-free.

    Parameters
    ----------
    distance:
        The candidate metric.
    objects:
        At least two sample objects.
    max_triples:
        Cap on the number of triangle checks (sampled uniformly when the
        full triple count exceeds it).
    tolerance:
        Numeric slack for floating-point noise.
    rng:
        Source of randomness for triple sampling.
    """
    if len(objects) < 2:
        raise QueryError("need at least two objects to check metric postulates")
    rng = np.random.default_rng(0) if rng is None else rng
    report = MetricReport()
    m = len(objects)

    cache: dict[tuple[int, int], float] = {}

    def dist(i: int, j: int) -> float:
        key = (i, j) if i <= j else (j, i)
        if key not in cache:
            cache[key] = float(distance(objects[key[0]], objects[key[1]]))
        return cache[key]

    for i in range(m):
        self_d = float(distance(objects[i], objects[i]))
        if abs(self_d) > tolerance:
            report.violations.append(
                MetricViolation("identity", (i, i), abs(self_d) - tolerance)
            )

    for i, j in itertools.combinations(range(m), 2):
        report.checked_pairs += 1
        d_ij = float(distance(objects[i], objects[j]))
        d_ji = float(distance(objects[j], objects[i]))
        if d_ij < -tolerance:
            report.violations.append(
                MetricViolation("non_negativity", (i, j), -d_ij - tolerance)
            )
        if abs(d_ij - d_ji) > tolerance:
            report.violations.append(
                MetricViolation("symmetry", (i, j), abs(d_ij - d_ji) - tolerance)
            )
        cache[(i, j)] = d_ij

    all_triples = m * (m - 1) * (m - 2) // 6
    if all_triples <= max_triples:
        triples = itertools.combinations(range(m), 3)
    else:
        picks = rng.integers(0, m, size=(max_triples, 3))
        triples = (tuple(sorted(row)) for row in picks if len(set(row)) == 3)
    for i, j, k in triples:
        report.checked_triples += 1
        d_ij, d_jk, d_ik = dist(i, j), dist(j, k), dist(i, k)
        slack = tolerance * max(1.0, d_ij, d_jk, d_ik)
        for lhs, a, b in ((d_ik, d_ij, d_jk), (d_ij, d_ik, d_jk), (d_jk, d_ij, d_ik)):
            if lhs > a + b + slack:
                report.violations.append(
                    MetricViolation("triangle", (i, j, k), lhs - (a + b) - slack)
                )
    return report


def _quadruples(
    m: int, max_quadruples: int, rng: np.random.Generator
):
    total = m * (m - 1) * (m - 2) * (m - 3) // 24
    if total <= max_quadruples:
        return itertools.combinations(range(m), 4)
    picks = rng.integers(0, m, size=(max_quadruples, 4))
    return (tuple(sorted(int(v) for v in row)) for row in picks if len(set(row)) == 4)


def check_ptolemy_matrix(
    pair_distances: np.ndarray,
    *,
    max_quadruples: int = 500,
    tolerance: float = _DEFAULT_TOLERANCE,
    rng: np.random.Generator | None = None,
) -> MetricReport:
    """Check Ptolemy's inequality over a pre-computed distance matrix.

    For every sampled quadruple ``(a, b, c, d)`` the three pairings of
    "opposite side" products must satisfy

        d(a,b) d(c,d) <= d(a,c) d(b,d) + d(a,d) d(b,c)

    (and the two rotations).  Ptolemaic pivot bounds are valid lower
    bounds exactly when the metric passes this, so the pivot table in
    ``bound="ptolemaic"`` mode runs this check on its pivot-pair matrix
    as a build-time guard — the matrix is already paid for, so the guard
    costs **zero** extra distance evaluations.

    Fewer than four points trivially pass.
    """
    d = np.asarray(pair_distances, dtype=np.float64)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise QueryError(f"pair_distances must be square, got shape {d.shape}")
    rng = np.random.default_rng(0) if rng is None else rng
    report = MetricReport()
    m = d.shape[0]
    if m < 4:
        return report
    for a, b, c, e in _quadruples(m, max_quadruples, rng):
        report.checked_quadruples += 1
        products = (
            d[a, b] * d[c, e],
            d[a, c] * d[b, e],
            d[a, e] * d[b, c],
        )
        slack = tolerance * max(1.0, *products)
        for pos in range(3):
            lhs = products[pos]
            rhs = products[(pos + 1) % 3] + products[(pos + 2) % 3]
            if lhs > rhs + slack:
                report.violations.append(
                    MetricViolation("ptolemy", (a, b, c, e), lhs - rhs - slack)
                )
    return report


def check_ptolemy_inequality(
    distance: Callable[[object, object], float],
    objects: Sequence[object],
    *,
    max_quadruples: int = 500,
    tolerance: float = _DEFAULT_TOLERANCE,
    rng: np.random.Generator | None = None,
) -> MetricReport:
    """Sample Ptolemy's inequality for a black-box *distance*.

    Evaluates the pairwise distances of the (at most
    ``4 * max_quadruples``) objects touched by the sampled quadruples,
    caching each pair once, then checks like :func:`check_ptolemy_matrix`.
    The QFD with a positive-definite matrix passes (it embeds
    isometrically into L2, which is Ptolemaic); an L1-like metric
    generally does not.
    """
    if len(objects) < 4:
        raise QueryError("need at least four objects to check Ptolemy's inequality")
    rng = np.random.default_rng(0) if rng is None else rng
    report = MetricReport()
    m = len(objects)

    cache: dict[tuple[int, int], float] = {}

    def dist(i: int, j: int) -> float:
        key = (i, j) if i <= j else (j, i)
        if key not in cache:
            cache[key] = float(distance(objects[key[0]], objects[key[1]]))
        return cache[key]

    for a, b, c, e in _quadruples(m, max_quadruples, rng):
        report.checked_quadruples += 1
        products = (
            dist(a, b) * dist(c, e),
            dist(a, c) * dist(b, e),
            dist(a, e) * dist(b, c),
        )
        slack = tolerance * max(1.0, *products)
        for pos in range(3):
            lhs = products[pos]
            rhs = products[(pos + 1) % 3] + products[(pos + 2) % 3]
            if lhs > rhs + slack:
                report.violations.append(
                    MetricViolation("ptolemy", (a, b, c, e), lhs - rhs - slack)
                )
    return report
