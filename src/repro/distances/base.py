"""Distance-function plumbing shared by all access methods.

Metric access methods treat the distance as a black box (paper Section 2.2),
so the whole library standardizes on plain callables ``d(u, v) -> float``.
This module adds the two pieces of glue the experiments need:

* :class:`CountingDistance` — a transparent wrapper that counts evaluations,
  the machine-independent cost measure used to reproduce Tables 1 and 2.
* :class:`DistanceStats` — an immutable snapshot of a counter.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

__all__ = ["DistanceFunction", "CountingDistance", "DistanceStats"]


@runtime_checkable
class DistanceFunction(Protocol):
    """Anything callable as ``d(u, v) -> float`` over numpy vectors."""

    def __call__(self, u: np.ndarray, v: np.ndarray) -> float: ...


@dataclass(frozen=True)
class DistanceStats:
    """Snapshot of a :class:`CountingDistance` counter.

    Attributes
    ----------
    calls:
        Number of single-pair distance evaluations.
    batch_rows:
        Number of rows evaluated through vectorized one-to-many calls;
        each row counts as one logical distance computation as well.
    """

    calls: int
    batch_rows: int

    @property
    def total(self) -> int:
        """Total logical distance computations (single + batched)."""
        return self.calls + self.batch_rows


class CountingDistance:
    """Wrap a distance function and count how often it is evaluated.

    The number of distance computations is the cost model of the paper's
    complexity analysis (Section 4): the QFD and QMap models spend *the
    same* number of computations for the same MAM, differing only in the
    per-computation cost — a property asserted by the integration tests
    through two of these counters.

    Parameters
    ----------
    func:
        The underlying distance ``d(u, v) -> float``.
    one_to_many:
        Optional vectorized form ``d1m(q, batch) -> ndarray``; when absent,
        a Gram-expansion kernel resolved from *func* takes its place, and
        only if neither exists does :meth:`one_to_many` fall back to a
        Python loop over ``func``.
    """

    def __init__(
        self,
        func: DistanceFunction,
        *,
        one_to_many: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    ) -> None:
        self._func = func
        if one_to_many is None:
            from ..kernels.kernels import resolve_kernel

            kernel = resolve_kernel(func)
            if kernel is not None:
                one_to_many = kernel.one_to_many
        self._one_to_many = one_to_many
        self._calls = 0
        self._batch_rows = 0
        # Counter updates must survive the batch engine's thread
        # executor: plain += on an attribute loses increments under
        # concurrent queries.
        self._lock = threading.Lock()

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]  # locks do not pickle (process executor)
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __call__(self, u: np.ndarray, v: np.ndarray) -> float:
        with self._lock:
            self._calls += 1
        return self._func(u, v)

    def one_to_many(self, q: np.ndarray, batch: np.ndarray) -> np.ndarray:
        """Distances from *q* to every row of *batch* (each row counted)."""
        rows = np.asarray(batch)
        with self._lock:
            self._batch_rows += rows.shape[0]
        if self._one_to_many is not None:
            return self._one_to_many(q, rows)
        return np.array([self._func(q, row) for row in rows], dtype=np.float64)

    @property
    def func(self) -> DistanceFunction:
        """The wrapped scalar distance (uncounted)."""
        return self._func

    @property
    def vectorized(self) -> Callable[[np.ndarray, np.ndarray], np.ndarray] | None:
        """The effective uncounted one-to-many form, if any."""
        return self._one_to_many

    def add_counts(self, *, calls: int = 0, batch_rows: int = 0) -> None:
        """Charge evaluations performed outside the wrapper.

        The kernel layer computes distances physically in batches but must
        charge them according to the *logical* access pattern of the MAM
        traversal; this is its entry point into the counter.
        """
        with self._lock:
            self._calls += calls
            self._batch_rows += batch_rows

    @property
    def stats(self) -> DistanceStats:
        """Current counter snapshot (consistent: both fields read atomically)."""
        with self._lock:
            return DistanceStats(calls=self._calls, batch_rows=self._batch_rows)

    @property
    def count(self) -> int:
        """Total logical distance computations so far."""
        with self._lock:
            return self._calls + self._batch_rows

    def reset(self) -> DistanceStats:
        """Zero the counters, returning the snapshot from before the reset."""
        with self._lock:
            before = DistanceStats(calls=self._calls, batch_rows=self._batch_rows)
            self._calls = 0
            self._batch_rows = 0
        return before
