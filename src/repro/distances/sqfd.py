"""Signature quadratic form distance — SQFD (paper Section 1.2.1).

The SQFD of Beecks et al. generalizes the QFD from fixed-dimensionality
histograms to *feature signatures*: variable-length sets of (centroid,
weight) pairs.  Comparing signatures ``u`` and ``v`` concatenates their
weights into ``(w_u | -w_v)`` and evaluates the usual quadratic form with a
*dynamic* similarity matrix built from the union of both centroid sets:

    SQFD(u, v) = sqrt((w_u | -w_v) A (w_u | -w_v)^T)

Because ``A`` depends on the concrete pair of signatures, there is no static
matrix to factor — the QMap transformation does not apply, which is part of
the paper's "(not)" story: static matrices map to Euclidean space; dynamic
ones keep their quadratic cost and invalidate MAM indexes built for a
particular matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .._typing import ArrayLike
from ..exceptions import DimensionMismatchError, QueryError

__all__ = [
    "FeatureSignature",
    "gaussian_similarity",
    "inverse_distance_similarity",
    "SignatureQuadraticFormDistance",
]

#: A similarity function over centroid matrices: f(X[(a,c)], Y[(b,c)]) -> (a, b).
SimilarityFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class FeatureSignature:
    """A feature signature: ``k`` centroids in R^c with positive weights.

    Attributes
    ----------
    centroids:
        ``(k, c)`` array of representative feature-space points.
    weights:
        ``(k,)`` array of strictly positive weights (typically cluster
        sizes or normalized proportions).
    """

    centroids: np.ndarray
    weights: np.ndarray

    @staticmethod
    def create(centroids: ArrayLike, weights: ArrayLike) -> "FeatureSignature":
        """Validate and build a signature from array-likes."""
        cents = np.asarray(centroids, dtype=np.float64)
        w = np.asarray(weights, dtype=np.float64)
        if cents.ndim != 2:
            raise DimensionMismatchError(
                f"centroids must be (k, c), got shape {cents.shape}"
            )
        if w.ndim != 1 or w.shape[0] != cents.shape[0]:
            raise DimensionMismatchError(
                f"weights must be (k,)={cents.shape[0]}, got shape {w.shape}"
            )
        if cents.shape[0] == 0:
            raise QueryError("a signature needs at least one centroid")
        if np.any(w <= 0.0):
            raise QueryError("signature weights must be strictly positive")
        cents = cents.copy()
        w = w.copy()
        cents.setflags(write=False)
        w.setflags(write=False)
        return FeatureSignature(centroids=cents, weights=w)

    @property
    def size(self) -> int:
        """Number of centroids ``k`` (the signature's 'dimensionality')."""
        return self.centroids.shape[0]

    @property
    def feature_dim(self) -> int:
        """Dimensionality ``c`` of the underlying feature space."""
        return self.centroids.shape[1]

    def normalized(self) -> "FeatureSignature":
        """Return a copy whose weights sum to one."""
        return FeatureSignature.create(self.centroids, self.weights / self.weights.sum())


def _pairwise_distances(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    diff = x[:, None, :] - y[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=2))


def gaussian_similarity(sigma: float = 1.0) -> SimilarityFunction:
    """Similarity ``f(c_i, c_j) = exp(-d^2 / (2 sigma^2))`` (positive-definite)."""
    if sigma <= 0.0:
        raise QueryError(f"sigma must be positive, got {sigma}")

    def func(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        d = _pairwise_distances(x, y)
        return np.exp(-(d * d) / (2.0 * sigma * sigma))

    return func


def inverse_distance_similarity(alpha: float = 1.0) -> SimilarityFunction:
    """Similarity ``f(c_i, c_j) = 1 / (1 + alpha d)`` (the Beecks default)."""
    if alpha <= 0.0:
        raise QueryError(f"alpha must be positive, got {alpha}")

    def func(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + alpha * _pairwise_distances(x, y))

    return func


class SignatureQuadraticFormDistance:
    """The SQFD with a pluggable centroid-similarity function.

    Parameters
    ----------
    similarity:
        Function building similarity blocks between centroid sets; defaults
        to :func:`gaussian_similarity` which guarantees a positive-definite
        dynamic matrix (and therefore metric behaviour).

    Examples
    --------
    >>> sig = FeatureSignature.create([[0.0, 0.0], [1.0, 1.0]], [0.5, 0.5])
    >>> dist = SignatureQuadraticFormDistance()
    >>> dist(sig, sig)
    0.0
    """

    def __init__(self, similarity: SimilarityFunction | None = None) -> None:
        self._similarity = similarity if similarity is not None else gaussian_similarity()

    def __call__(self, u: FeatureSignature, v: FeatureSignature) -> float:
        """SQFD between two signatures (O((k_u + k_v)^2) per evaluation)."""
        if u.feature_dim != v.feature_dim:
            raise DimensionMismatchError(
                f"signatures live in different feature spaces "
                f"({u.feature_dim} vs {v.feature_dim})"
            )
        w = np.concatenate([u.weights, -v.weights])
        a = self.dynamic_matrix(u, v)
        return float(np.sqrt(max(float(w @ a @ w), 0.0)))

    def dynamic_matrix(self, u: FeatureSignature, v: FeatureSignature) -> np.ndarray:
        """The per-pair QFD matrix over the concatenated centroid sets.

        Exposed so tests (and curious readers) can confirm that the matrix
        genuinely changes from pair to pair — the property that blocks a
        static QMap factorization.
        """
        f = self._similarity
        a_uu = f(u.centroids, u.centroids)
        a_uv = f(u.centroids, v.centroids)
        a_vv = f(v.centroids, v.centroids)
        top = np.hstack([a_uu, a_uv])
        bottom = np.hstack([a_uv.T, a_vv])
        return np.vstack([top, bottom])

    def pairwise(self, signatures: Sequence[FeatureSignature]) -> np.ndarray:
        """Symmetric distance matrix over a sequence of signatures."""
        m = len(signatures)
        out = np.zeros((m, m), dtype=np.float64)
        for i in range(m):
            for j in range(i + 1, m):
                out[i, j] = out[j, i] = self(signatures[i], signatures[j])
        return out
