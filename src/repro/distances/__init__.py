"""Distance functions and distance-function plumbing.

Covers everything the paper's Sections 1.1–1.2.1 discuss: the Minkowski
family, the weighted Euclidean degenerate case, functional QFD forms, the
dynamic signature QFD (SQFD), plus the evaluation-counting wrapper and an
empirical metric-postulate checker used throughout the tests and benches.
"""

from .base import CountingDistance, DistanceFunction, DistanceStats
from .metric_checks import (
    MetricReport,
    MetricViolation,
    check_metric_postulates,
    check_ptolemy_inequality,
    check_ptolemy_matrix,
)
from .minkowski import (
    MinkowskiDistance,
    WeightedEuclidean,
    chessboard,
    euclidean,
    euclidean_one_to_many,
    manhattan,
    minkowski,
    weighted_euclidean,
)
from .quadratic import qfd, qfd_squared
from .sqfd import (
    FeatureSignature,
    SignatureQuadraticFormDistance,
    gaussian_similarity,
    inverse_distance_similarity,
)

__all__ = [
    "CountingDistance",
    "DistanceFunction",
    "DistanceStats",
    "MetricReport",
    "MetricViolation",
    "check_metric_postulates",
    "check_ptolemy_inequality",
    "check_ptolemy_matrix",
    "MinkowskiDistance",
    "WeightedEuclidean",
    "minkowski",
    "manhattan",
    "euclidean",
    "chessboard",
    "weighted_euclidean",
    "euclidean_one_to_many",
    "qfd",
    "qfd_squared",
    "FeatureSignature",
    "SignatureQuadraticFormDistance",
    "gaussian_similarity",
    "inverse_distance_similarity",
]
