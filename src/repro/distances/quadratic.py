"""Functional forms of the quadratic form distance.

The object-oriented entry point is
:class:`repro.core.qfd.QuadraticFormDistance`; these free functions cover
one-off evaluations where constructing (and validating) a distance object
would be overkill, e.g. inside tests and the signature distance of
:mod:`repro.distances.sqfd`, which must rebuild its matrix per pair.

No positive-definiteness validation happens here — callers that need the
metric guarantees should go through :mod:`repro.core`.
"""

from __future__ import annotations

import math


from .._typing import ArrayLike, as_square_matrix, as_vector
from ..exceptions import DimensionMismatchError

__all__ = ["qfd", "qfd_squared"]


def qfd_squared(u: ArrayLike, v: ArrayLike, a: ArrayLike) -> float:
    """Squared quadratic form ``(u - v) A (u - v)^T`` (clamped at zero)."""
    mat = as_square_matrix(a, name="QFD matrix")
    x = as_vector(u, name="u")
    y = as_vector(v, x.shape[0], name="v")
    if mat.shape[0] != x.shape[0]:
        raise DimensionMismatchError(
            f"matrix is {mat.shape[0]}x{mat.shape[0]} but vectors have "
            f"dimensionality {x.shape[0]}"
        )
    z = x - y
    return max(float(z @ mat @ z), 0.0)


def qfd(u: ArrayLike, v: ArrayLike, a: ArrayLike) -> float:
    """Quadratic form distance ``sqrt((u - v) A (u - v)^T)``."""
    return math.sqrt(qfd_squared(u, v, a))
