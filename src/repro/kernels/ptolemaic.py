"""Ptolemaic pivot lower bounds (Hetland — *Ptolemaic Indexing*).

The QMap embedding is an exact isometry into L2, so the QFD is not just a
metric but a *Ptolemaic* metric: any four points satisfy Ptolemy's
inequality ``d(a,b) d(c,d) <= d(a,c) d(b,d) + d(a,d) d(b,c)``.  Rearranged
for a query ``q``, candidate ``v`` and a pivot pair ``(p1, p2)`` it yields
the pivot lower bound

    d(q, v) >= |d(q,p1) d(v,p2) - d(q,p2) d(v,p1)| / d(p1, p2)

which is frequently far tighter than the triangle bound
``max_j |d(q,p_j) - d(v,p_j)|`` the classic pivot table uses — the paper's
Table 2 shows pivot filtering under raw QFD wasting most of its budget on
the weak triangle bound, and this module supplies the stronger one.

The functions here are pure array math over the *pre-computed* pivot
distances (the ``m x p`` pivot table, the query's ``p`` pivot distances and
the ``p x p`` pivot-pair matrix); they never evaluate the metric, so the
logical charging discipline of :class:`repro.mam.base.DistancePort` is
untouched.  The vectorized forms are arranged so every elementwise
operation (multiply, subtract, abs, divide, max) is performed on exactly
the floats of :func:`ptolemaic_bound_scalar`, giving the same bit-identical
vectorized/scalar guarantee as the Gram kernels in :mod:`repro.kernels.gram`.

Degenerate pivot pairs (``d(p1,p2) <= 0`` — duplicate pivot vectors) would
put a zero in the denominator; :func:`valid_pivot_pairs` excludes them up
front, so the bound gracefully degrades (to ``0.0`` when *no* usable pair
exists) instead of dividing by zero.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "valid_pivot_pairs",
    "ptolemaic_bound_scalar",
    "ptolemaic_bounds",
    "ptolemaic_bound_matrix",
]

#: Pair-axis block size for the batched forms: bounds the temporary to
#: roughly ``_BLOCK_FLOATS`` doubles (~32 MB) regardless of ``m`` or the
#: number of pivot pairs.
_BLOCK_FLOATS = 4_000_000


def valid_pivot_pairs(pair_distances: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Index arrays ``(i, j)`` of the usable pivot pairs (``i < j``).

    A pair is usable when its pivot-pivot distance is strictly positive;
    zero-distance pairs (duplicate pivots) would make the Ptolemaic
    denominator vanish and are dropped here once, at bind time.
    """
    d = np.asarray(pair_distances, dtype=np.float64)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError(f"pair_distances must be square, got shape {d.shape}")
    ii, jj = np.triu_indices(d.shape[0], k=1)
    keep = d[ii, jj] > 0.0
    return ii[keep], jj[keep]


def ptolemaic_bound_scalar(
    row: np.ndarray,
    query_vector: np.ndarray,
    pair_distances: np.ndarray,
    pairs: tuple[np.ndarray, np.ndarray],
) -> float:
    """Reference scalar evaluation of the max-over-pairs Ptolemaic bound.

    *row* is one object's pivot-distance row ``d(v, p_*)`` and
    *query_vector* the query's ``d(q, p_*)``.  This is the ground truth the
    batched forms must reproduce bit-for-bit (same multiply/subtract/abs/
    divide sequence per pair, and max is exact), mirroring the scalar
    fallback discipline of the Gram kernels.
    """
    ii, jj = pairs
    best = 0.0
    for i, j in zip(ii, jj):
        num = abs(query_vector[i] * row[j] - query_vector[j] * row[i])
        lb = num / pair_distances[i, j]
        if lb > best:
            best = lb
    return best


def ptolemaic_bounds(
    table: np.ndarray,
    query_vector: np.ndarray,
    pair_distances: np.ndarray,
    pairs: tuple[np.ndarray, np.ndarray],
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Max-over-pivot-pairs Ptolemaic lower bound for every table row.

    Parameters
    ----------
    table:
        The ``(m, p)`` pivot table of object-pivot distances.
    query_vector:
        The query's ``(p,)`` pivot distances.
    pair_distances:
        The ``(p, p)`` pivot-pair distance matrix.
    pairs:
        The usable pairs from :func:`valid_pivot_pairs`.
    out:
        Optional ``(m,)`` accumulator; bounds are max-merged into it
        (used by the ``"best"`` mode to combine with the triangle bound).

    Batched over candidates and pivot pairs in blocks, with each
    elementwise step ordered exactly like :func:`ptolemaic_bound_scalar` —
    only the commutative/exact ``max`` reduction is reordered, so the
    result is bit-identical to the scalar loop.
    """
    ii, jj = pairs
    m = table.shape[0]
    if out is None:
        out = np.zeros(m, dtype=np.float64)
    if ii.size == 0 or m == 0:
        return out
    denom = pair_distances[ii, jj]
    block = max(1, _BLOCK_FLOATS // max(1, m))
    for start in range(0, ii.size, block):
        bi = ii[start : start + block]
        bj = jj[start : start + block]
        # (m, b): |d(q,p_i) d(v,p_j) - d(q,p_j) d(v,p_i)| / d(p_i, p_j)
        lb = np.abs(
            query_vector[bi] * table[:, bj] - query_vector[bj] * table[:, bi]
        )
        lb /= denom[start : start + block]
        np.maximum(out, lb.max(axis=1), out=out)
    return out


def ptolemaic_bound_matrix(
    table: np.ndarray,
    query_vectors: np.ndarray,
    pair_distances: np.ndarray,
    pairs: tuple[np.ndarray, np.ndarray],
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``(m, s)`` Ptolemaic bound matrix for *s* stacked query vectors.

    The pair axis is accumulated one pair at a time, keeping the working
    memory at one ``m x s`` block (never ``m x s x pairs``) and producing
    exactly the floats of the per-query :func:`ptolemaic_bounds` — the
    entries are the same elementwise products/differences, and the max
    accumulation is exact in any order.
    """
    ii, jj = pairs
    m = table.shape[0]
    s = query_vectors.shape[0]
    if out is None:
        out = np.zeros((m, s), dtype=np.float64)
    if ii.size == 0 or m == 0 or s == 0:
        return out
    for i, j in zip(ii, jj):
        lb = np.abs(
            query_vectors[None, :, i] * table[:, j, None]
            - query_vectors[None, :, j] * table[:, i, None]
        )
        lb /= pair_distances[i, j]
        np.maximum(out, lb, out=out)
    return out
