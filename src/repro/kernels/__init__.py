"""BLAS-backed distance kernels (Gram expansion, query contexts, factor cache).

This package is the performance substrate under the distance and MAM
layers: pure batched math in :mod:`~repro.kernels.gram`, per-metric kernel
objects and :func:`~repro.kernels.kernels.resolve_kernel` in
:mod:`~repro.kernels.kernels`, and the content-addressed Cholesky registry
in :mod:`~repro.kernels.cholesky_cache`.  Nothing here counts distance
evaluations — logical charging stays in :class:`repro.mam.base.DistancePort`.
"""

from .blocked import (
    DEFAULT_BLOCK_ROWS,
    blocked_l2_cross,
    blocked_l2_one_to_many,
    blocked_l2_pairwise,
    blocked_l2_row_norms,
    blocked_qfd_cross,
    blocked_qfd_one_to_many,
    blocked_qfd_pairwise,
    blocked_qfd_row_norms,
    iter_blocks,
)
from .cholesky_cache import cached_cholesky, cholesky_cache_info, clear_cholesky_cache
from .gram import (
    RECHECK_REL,
    l2_cross,
    l2_one_to_many,
    l2_pairwise,
    l2_row_norms,
    qfd_cross,
    qfd_one_to_many,
    qfd_pairwise,
    qfd_row_norms,
    qfd_squared_one_to_many,
    qfd_squared_pairwise,
)
from .kernels import L2Kernel, L2QueryContext, QFDKernel, QFDQueryContext, resolve_kernel
from .ptolemaic import (
    ptolemaic_bound_matrix,
    ptolemaic_bound_scalar,
    ptolemaic_bounds,
    valid_pivot_pairs,
)

__all__ = [
    "DEFAULT_BLOCK_ROWS",
    "RECHECK_REL",
    "blocked_l2_cross",
    "blocked_l2_one_to_many",
    "blocked_l2_pairwise",
    "blocked_l2_row_norms",
    "blocked_qfd_cross",
    "blocked_qfd_one_to_many",
    "blocked_qfd_pairwise",
    "blocked_qfd_row_norms",
    "iter_blocks",
    "cached_cholesky",
    "cholesky_cache_info",
    "clear_cholesky_cache",
    "l2_cross",
    "l2_one_to_many",
    "l2_pairwise",
    "l2_row_norms",
    "qfd_cross",
    "qfd_one_to_many",
    "qfd_pairwise",
    "qfd_row_norms",
    "qfd_squared_one_to_many",
    "qfd_squared_pairwise",
    "L2Kernel",
    "L2QueryContext",
    "QFDKernel",
    "QFDQueryContext",
    "ptolemaic_bound_matrix",
    "ptolemaic_bound_scalar",
    "ptolemaic_bounds",
    "resolve_kernel",
    "valid_pivot_pairs",
]
