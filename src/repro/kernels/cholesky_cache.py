"""Process-wide cache of Cholesky factors keyed by matrix content.

The QMap model refactorizes ``A = B B^T`` every time a :class:`QMap` is
constructed, yet an experiment sweep builds dozens of models over the *same*
handful of matrices.  Factorization is O(n^3); hashing the matrix bytes is
O(n^2) — so a content-addressed cache turns every repeat construction into
a lookup.  Factors are returned read-only and shared between callers.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

__all__ = ["cached_cholesky", "clear_cholesky_cache", "cholesky_cache_info"]

_MAX_ENTRIES = 32

_lock = threading.Lock()
_cache: OrderedDict[tuple, np.ndarray] = OrderedDict()
_hits = 0
_misses = 0


def _key(matrix: np.ndarray) -> tuple:
    contiguous = np.ascontiguousarray(matrix, dtype=np.float64)
    digest = hashlib.sha1(contiguous.tobytes()).hexdigest()
    return (contiguous.shape, digest)


def cached_cholesky(matrix: np.ndarray) -> np.ndarray:
    """Lower-triangular factor ``B`` with ``A = B B^T``, cached by content.

    The returned array is read-only; callers needing a private mutable copy
    must copy it themselves.
    """
    global _hits, _misses
    key = _key(matrix)
    with _lock:
        factor = _cache.get(key)
        if factor is not None:
            _cache.move_to_end(key)
            _hits += 1
            return factor
    # Factor outside the lock: O(n^3) work must not serialize other threads.
    from ..core.cholesky import cholesky

    factor = cholesky(matrix, check_symmetry=False)
    factor.setflags(write=False)
    with _lock:
        existing = _cache.get(key)
        if existing is not None:
            _hits += 1
            return existing
        _misses += 1
        _cache[key] = factor
        while len(_cache) > _MAX_ENTRIES:
            _cache.popitem(last=False)
    return factor


def clear_cholesky_cache() -> None:
    """Drop every cached factor and reset the hit/miss counters."""
    global _hits, _misses
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0


def cholesky_cache_info() -> dict:
    """Snapshot of cache occupancy and hit/miss counts (for tests/benchmarks)."""
    with _lock:
        return {"entries": len(_cache), "hits": _hits, "misses": _misses}
