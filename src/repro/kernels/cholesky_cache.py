"""Process-wide cache of Cholesky factors keyed by matrix content.

The QMap model refactorizes ``A = B B^T`` every time a :class:`QMap` is
constructed, yet an experiment sweep builds dozens of models over the *same*
handful of matrices.  Factorization is O(n^3); hashing the matrix bytes is
O(n^2) — so a content-addressed cache turns every repeat construction into
a lookup.  Factors are returned read-only and shared between callers.

Concurrency: the O(n^3) factorization runs outside the lock (it must not
serialize unrelated threads), but a per-key in-flight registry de-duplicates
concurrent misses — the first thread to miss a key becomes its owner and
factors it; others wait on the owner's event and read the inserted factor,
so each distinct matrix is factored exactly once no matter how many threads
race on it.  If the owner's factorization raises, its waiters retake the
miss path (one of them becomes the new owner) instead of hanging.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

__all__ = ["cached_cholesky", "clear_cholesky_cache", "cholesky_cache_info"]

_MAX_ENTRIES = 32

_lock = threading.Lock()
_cache: OrderedDict[tuple, np.ndarray] = OrderedDict()
#: key -> event set when the owning thread finishes (successfully or not).
_inflight: dict[tuple, threading.Event] = {}
_hits = 0
_misses = 0


def _key(matrix: np.ndarray) -> tuple:
    contiguous = np.ascontiguousarray(matrix, dtype=np.float64)
    digest = hashlib.sha1(contiguous.tobytes()).hexdigest()
    return (contiguous.shape, digest)


def cached_cholesky(matrix: np.ndarray) -> np.ndarray:
    """Lower-triangular factor ``B`` with ``A = B B^T``, cached by content.

    The returned array is read-only; callers needing a private mutable copy
    must copy it themselves.
    """
    global _hits, _misses
    key = _key(matrix)
    while True:
        with _lock:
            factor = _cache.get(key)
            if factor is not None:
                _cache.move_to_end(key)
                _hits += 1
                return factor
            waiting_on = _inflight.get(key)
            if waiting_on is None:
                # This thread owns the factorization for *key*.
                _inflight[key] = done = threading.Event()
                _misses += 1
                break
        # Another thread is already factoring this exact matrix; wait for
        # it and re-check the cache (looping handles owner failure and the
        # unlucky case of the entry being evicted before we woke up).
        waiting_on.wait()

    # Factor outside the lock: O(n^3) work must not serialize other threads.
    from ..core.cholesky import cholesky

    try:
        factor = cholesky(matrix, check_symmetry=False)
        factor.setflags(write=False)
        with _lock:
            _cache[key] = factor
            _cache.move_to_end(key)
            while len(_cache) > _MAX_ENTRIES:
                _cache.popitem(last=False)
    finally:
        with _lock:
            _inflight.pop(key, None)
        done.set()
    return factor


def clear_cholesky_cache() -> None:
    """Drop every cached factor and reset the hit/miss counters.

    In-flight factorizations are left to complete; their entries will be
    inserted into the now-empty cache when they finish.
    """
    global _hits, _misses
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0


def cholesky_cache_info() -> dict:
    """Snapshot of cache occupancy and hit/miss counts (for tests/benchmarks)."""
    with _lock:
        return {"entries": len(_cache), "hits": _hits, "misses": _misses}
