"""Distance kernels: per-metric batched evaluators and query contexts.

A *kernel* packages the Gram-expansion math of :mod:`repro.kernels.gram`
behind a small object interface the access-method layer can hold on to:

``row_norms(rows)``
    the cacheable per-row term (``vAv^T`` for QFD, ``vv^T`` for L2);
``bind(query, ...) -> QueryContext``
    precompute the per-query terms once (``qA`` and ``qAq^T``) so every
    subsequent candidate costs one O(n) dot product;
``one_to_many`` / ``pairwise`` / ``cross``
    free-standing batched forms for build-time work.

:func:`resolve_kernel` maps a scalar distance function to its kernel, or
``None`` when no batched form is known (the caller then falls back to the
function's own vectorized form or a plain loop).

Kernels are constructed with an optional ``block_rows``: when set, every
batch method streams its candidate rows through the tiled,
block-size-invariant primitives of :mod:`repro.kernels.blocked` instead
of the unblocked BLAS forms — the out-of-core configuration used with
memory-mapped float32 stores.  ``block_rows=None`` (the default) keeps
the original unblocked arithmetic byte-identical.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from . import blocked, gram

__all__ = [
    "QFDKernel",
    "QFDQueryContext",
    "L2Kernel",
    "L2QueryContext",
    "resolve_kernel",
]


class QFDQueryContext:
    """Per-query amortization for the QFD: ``qA`` and ``qAq^T`` once.

    After binding, each candidate distance is
    ``sqrt(qAq^T - 2 qA.v + vAv^T)`` — O(n) with a cached row norm instead
    of the O(n^2) quadratic form per pair.
    """

    __slots__ = ("_kernel", "query", "q_a", "q_norm")

    def __init__(self, kernel: "QFDKernel", query: np.ndarray) -> None:
        self._kernel = kernel
        self.query = np.asarray(query, dtype=np.float64)
        # gemv, not part of a chunk-wide gemm: per-query BLAS paths must be
        # identical no matter how many queries share the bind site.
        self.q_a = self.query @ kernel.matrix
        self.q_norm = float(self.q_a @ self.query)

    def many(self, rows: np.ndarray, norms: np.ndarray | None = None) -> np.ndarray:
        """Distances from the bound query to every row."""
        if self._kernel.block_rows is not None:
            return blocked.blocked_qfd_one_to_many(
                self._kernel.matrix,
                self.query,
                rows,
                row_norms=norms,
                q_a=self.q_a,
                q_norm=self.q_norm,
                block_rows=self._kernel.block_rows,
            )
        return gram.qfd_one_to_many(
            self._kernel.matrix,
            self.query,
            rows,
            row_norms=norms,
            q_a=self.q_a,
            q_norm=self.q_norm,
        )

    def one(self, row: np.ndarray, norm: float | None = None) -> float:
        """Distance from the bound query to a single row."""
        row = np.asarray(row, dtype=np.float64)
        if norm is None:
            g = row @ self._kernel.matrix
            norm = float(g @ row)
        sq = self.q_norm + norm - 2.0 * float(row @ self.q_a)
        if sq <= gram.RECHECK_REL * (self.q_norm + norm):
            diff = row - self.query
            sq = float(diff @ self._kernel.matrix @ diff)
        return float(np.sqrt(sq if sq > 0.0 else 0.0))


class QFDKernel:
    """Batched Gram-expansion evaluator for a static QFD matrix.

    ``block_rows`` selects the tiled out-of-core arithmetic (see module
    docstring); ``None`` keeps the unblocked path.
    """

    __slots__ = ("matrix", "block_rows")

    def __init__(self, matrix: np.ndarray, *, block_rows: int | None = None) -> None:
        self.matrix = np.asarray(matrix, dtype=np.float64)
        self.block_rows = block_rows

    def row_norms(self, rows: np.ndarray) -> np.ndarray:
        if self.block_rows is not None:
            return blocked.blocked_qfd_row_norms(
                self.matrix, rows, block_rows=self.block_rows
            )
        return gram.qfd_row_norms(self.matrix, rows)

    def bind(self, query: np.ndarray) -> QFDQueryContext:
        return QFDQueryContext(self, query)

    def one_to_many(
        self, q: np.ndarray, rows: np.ndarray, *, row_norms: np.ndarray | None = None
    ) -> np.ndarray:
        if self.block_rows is not None:
            return blocked.blocked_qfd_one_to_many(
                self.matrix, q, rows, row_norms=row_norms, block_rows=self.block_rows
            )
        return gram.qfd_one_to_many(self.matrix, q, rows, row_norms=row_norms)

    def pairwise(
        self, rows: np.ndarray, *, row_norms: np.ndarray | None = None
    ) -> np.ndarray:
        if self.block_rows is not None:
            return blocked.blocked_qfd_pairwise(
                self.matrix, rows, row_norms=row_norms, block_rows=self.block_rows
            )
        return gram.qfd_pairwise(self.matrix, rows, row_norms=row_norms)

    def cross(
        self,
        rows_a: np.ndarray,
        rows_b: np.ndarray,
        *,
        norms_a: np.ndarray | None = None,
        norms_b: np.ndarray | None = None,
    ) -> np.ndarray:
        if self.block_rows is not None:
            return blocked.blocked_qfd_cross(
                self.matrix,
                rows_a,
                rows_b,
                norms_a=norms_a,
                norms_b=norms_b,
                block_rows=self.block_rows,
            )
        return gram.qfd_cross(
            self.matrix, rows_a, rows_b, norms_a=norms_a, norms_b=norms_b
        )


class L2QueryContext:
    """Per-query context for L2 — difference-based by design.

    The diff form is exact near zero and bit-identical to
    :func:`repro.distances.minkowski.euclidean_one_to_many`, which keeps the
    QMap model's mapped-space results exactly equal to a plain scan; the
    Gram form for L2 is exposed only through the kernel's batch methods.
    The blocked variant tiles the same per-row difference arithmetic, so
    its floats do not move either.
    """

    __slots__ = ("query", "block_rows")

    def __init__(self, query: np.ndarray, *, block_rows: int | None = None) -> None:
        self.query = np.asarray(query, dtype=np.float64)
        self.block_rows = block_rows

    def many(self, rows: np.ndarray, norms: np.ndarray | None = None) -> np.ndarray:
        if self.block_rows is not None:
            return blocked.blocked_l2_one_to_many(
                self.query, rows, block_rows=self.block_rows
            )
        return gram.l2_one_to_many(self.query, rows)

    def one(self, row: np.ndarray, norm: float | None = None) -> float:
        return float(np.linalg.norm(np.asarray(row, dtype=np.float64) - self.query))


class L2Kernel:
    """Batched evaluator for the Euclidean distance."""

    __slots__ = ("block_rows",)

    def __init__(self, *, block_rows: int | None = None) -> None:
        self.block_rows = block_rows

    def row_norms(self, rows: np.ndarray) -> np.ndarray:
        if self.block_rows is not None:
            return blocked.blocked_l2_row_norms(rows, block_rows=self.block_rows)
        return gram.l2_row_norms(rows)

    def bind(self, query: np.ndarray) -> L2QueryContext:
        return L2QueryContext(query, block_rows=self.block_rows)

    def one_to_many(
        self, q: np.ndarray, rows: np.ndarray, *, row_norms: np.ndarray | None = None
    ) -> np.ndarray:
        if self.block_rows is not None:
            return blocked.blocked_l2_one_to_many(q, rows, block_rows=self.block_rows)
        return gram.l2_one_to_many(q, rows)

    def pairwise(
        self, rows: np.ndarray, *, row_norms: np.ndarray | None = None
    ) -> np.ndarray:
        if self.block_rows is not None:
            return blocked.blocked_l2_pairwise(
                rows, row_norms=row_norms, block_rows=self.block_rows
            )
        return gram.l2_pairwise(rows, row_norms=row_norms)

    def cross(
        self,
        rows_a: np.ndarray,
        rows_b: np.ndarray,
        *,
        norms_a: np.ndarray | None = None,
        norms_b: np.ndarray | None = None,
    ) -> np.ndarray:
        if self.block_rows is not None:
            return blocked.blocked_l2_cross(
                rows_a,
                rows_b,
                norms_a=norms_a,
                norms_b=norms_b,
                block_rows=self.block_rows,
            )
        return gram.l2_cross(rows_a, rows_b, norms_a=norms_a, norms_b=norms_b)


def resolve_kernel(
    func: Callable, *, block_rows: int | None = None
) -> QFDKernel | L2Kernel | None:
    """Best batched kernel for a scalar distance function, or ``None``.

    Unwraps :class:`~repro.distances.base.CountingDistance` to inspect the
    underlying metric; recognizes the static QFD and the plain Euclidean
    distance.  Imports lazily — this module sits below the distance layer.
    *block_rows* configures the returned kernel for tiled out-of-core
    evaluation (see :mod:`repro.kernels.blocked`).
    """
    from ..distances.base import CountingDistance

    if isinstance(func, CountingDistance):
        func = func.func
    from ..core.qfd import QuadraticFormDistance

    if isinstance(func, QuadraticFormDistance):
        return QFDKernel(func.matrix, block_rows=block_rows)
    from ..distances.minkowski import euclidean

    if func is euclidean:
        return L2Kernel(block_rows=block_rows)
    return None
