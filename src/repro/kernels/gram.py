"""Gram-expansion distance math (BLAS substrate of the kernel layer).

Both the QFD and the Euclidean distance admit the Gram expansion

    d(u, v)^2 = uAu^T + vAv^T - 2 uAv^T          (A = I for L2)

("Faster Linear Algebra for Distance Matrices", arXiv 2210.15114): once the
per-row norms ``vAv^T`` are known, a whole batch of distances against a
fixed query costs one matrix-vector product instead of one O(n^2) quadratic
form per pair.  The functions here are pure array math — no counting, no
validation; the charging semantics live in :class:`repro.mam.base.DistancePort`.

Cancellation guard
------------------
The expansion subtracts numbers of size ``uAu^T + vAv^T`` to produce a
result that can be arbitrarily small, so tiny distances lose all their
significant digits (``u == v`` comes out as ``±O(eps * scale)`` instead of
exactly ``0``).  Every function therefore *rechecks* suspiciously small
squared distances — anything below ``RECHECK_REL * (uAu^T + vAv^T)`` — by
recomputing them with the exact difference-based form.  The threshold is
orders of magnitude above the expansion's rounding error and orders of
magnitude below any distance the expansion can resolve, so the recheck
changes only values that were pure noise.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "RECHECK_REL",
    "qfd_row_norms",
    "l2_row_norms",
    "qfd_squared_one_to_many",
    "qfd_one_to_many",
    "l2_one_to_many",
    "qfd_squared_pairwise",
    "qfd_pairwise",
    "l2_pairwise",
    "qfd_cross",
    "l2_cross",
]

#: Relative threshold under which a Gram-expanded squared distance is
#: indistinguishable from cancellation noise and is recomputed exactly.
#: The expansion's error is O(eps * scale) ~ 1e-14 * scale; true squared
#: distances the caller can ever act on are far above 1e-12 * scale.
RECHECK_REL = 1e-12


def _as64(rows: np.ndarray) -> np.ndarray:
    """Coerce to float64 so every accumulation runs in double precision.

    A no-op (no copy) for float64 inputs; float32 rows from a
    half-precision store would otherwise hit same-dtype fast paths
    (``rows @ rows.T``, ``einsum("ij,ij->i", rows, rows)``) that
    accumulate in float32 and drift past the kernel-vs-scalar tolerance.
    """
    return np.asarray(rows, dtype=np.float64)


def qfd_row_norms(matrix: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Per-row quadratic forms ``vAv^T`` (the cacheable half of the Gram sum)."""
    rows = _as64(rows)
    return np.einsum("ij,ij->i", rows @ matrix, rows)


def l2_row_norms(rows: np.ndarray) -> np.ndarray:
    """Per-row squared L2 norms ``vv^T``."""
    rows = _as64(rows)
    return np.einsum("ij,ij->i", rows, rows)


def _qfd_squared_diff(matrix: np.ndarray, q: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Exact difference-based squared QFD (the recheck path)."""
    diff = _as64(rows) - _as64(q)
    return np.einsum("ij,ij->i", diff @ matrix, diff)


def qfd_squared_one_to_many(
    matrix: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    *,
    row_norms: np.ndarray | None = None,
    q_a: np.ndarray | None = None,
    q_norm: float | None = None,
) -> np.ndarray:
    """Squared QFD from *q* to every row via the Gram expansion.

    With *row_norms*, *q_a* (= ``qA``) and *q_norm* (= ``qAq^T``) supplied,
    each row costs one O(n) dot product — this is the amortized hot path of
    :class:`~repro.kernels.kernels.QFDQueryContext`.
    """
    q = _as64(q)
    rows = _as64(rows)
    if q_a is None:
        q_a = q @ matrix
    if q_norm is None:
        q_norm = float(q_a @ q)
    if row_norms is None:
        row_norms = qfd_row_norms(matrix, rows)
    sq = q_norm + row_norms - 2.0 * (rows @ q_a)
    suspect = np.flatnonzero(sq <= RECHECK_REL * (q_norm + row_norms))
    if suspect.size:
        sq[suspect] = _qfd_squared_diff(matrix, q, rows[suspect])
    return np.maximum(sq, 0.0)


def qfd_one_to_many(
    matrix: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    *,
    row_norms: np.ndarray | None = None,
    q_a: np.ndarray | None = None,
    q_norm: float | None = None,
) -> np.ndarray:
    """QFD distances from *q* to every row (Gram expansion + recheck)."""
    return np.sqrt(
        qfd_squared_one_to_many(
            matrix, q, rows, row_norms=row_norms, q_a=q_a, q_norm=q_norm
        )
    )


def l2_one_to_many(q: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """L2 distances from *q* to every row — difference-based on purpose.

    For a single query the diff form is already one fused pass and, unlike
    the Gram form, exact near zero; the QMap-space query path uses it so
    mapped-space results stay bit-identical to a plain Euclidean scan.
    """
    diff = _as64(rows) - _as64(q)
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def qfd_squared_pairwise(
    matrix: np.ndarray,
    rows: np.ndarray,
    *,
    row_norms: np.ndarray | None = None,
) -> np.ndarray:
    """Exactly-symmetric squared QFD matrix over *rows* (Gram + recheck).

    The diagonal is forced to exactly ``0`` and the cross term is
    symmetrized as ``C + C^T`` (float addition commutes), so the output is
    bit-symmetric — partition decisions that read row *i* against row *j*
    see the same number in both orders.
    """
    rows = _as64(rows)
    g = rows @ matrix
    if row_norms is None:
        row_norms = np.einsum("ij,ij->i", g, rows)
    cross = g @ rows.T
    sq = row_norms[:, None] + row_norms[None, :] - (cross + cross.T)
    np.fill_diagonal(sq, 0.0)
    suspect = sq <= RECHECK_REL * (row_norms[:, None] + row_norms[None, :])
    np.fill_diagonal(suspect, False)
    ii, jj = np.nonzero(np.triu(suspect, 1))
    if ii.size:
        diff = rows[ii] - rows[jj]
        exact = np.einsum("ij,ij->i", diff @ matrix, diff)
        sq[ii, jj] = exact
        sq[jj, ii] = exact
    return np.maximum(sq, 0.0)


def qfd_pairwise(
    matrix: np.ndarray,
    rows: np.ndarray,
    *,
    row_norms: np.ndarray | None = None,
) -> np.ndarray:
    """Pairwise QFD distance matrix (symmetric, zero diagonal)."""
    return np.sqrt(qfd_squared_pairwise(matrix, rows, row_norms=row_norms))


def l2_pairwise(rows: np.ndarray, *, row_norms: np.ndarray | None = None) -> np.ndarray:
    """Pairwise L2 distance matrix via the Gram expansion (+ recheck)."""
    rows = _as64(rows)
    if row_norms is None:
        row_norms = l2_row_norms(rows)
    cross = rows @ rows.T
    sq = row_norms[:, None] + row_norms[None, :] - (cross + cross.T)
    np.fill_diagonal(sq, 0.0)
    suspect = sq <= RECHECK_REL * (row_norms[:, None] + row_norms[None, :])
    np.fill_diagonal(suspect, False)
    ii, jj = np.nonzero(np.triu(suspect, 1))
    if ii.size:
        diff = rows[ii] - rows[jj]
        exact = np.einsum("ij,ij->i", diff, diff)
        sq[ii, jj] = exact
        sq[jj, ii] = exact
    return np.sqrt(np.maximum(sq, 0.0))


def qfd_cross(
    matrix: np.ndarray,
    rows_a: np.ndarray,
    rows_b: np.ndarray,
    *,
    norms_a: np.ndarray | None = None,
    norms_b: np.ndarray | None = None,
) -> np.ndarray:
    """``(a, b)`` QFD distance matrix between two row batches."""
    rows_a = _as64(rows_a)
    rows_b = _as64(rows_b)
    g = rows_a @ matrix
    if norms_a is None:
        norms_a = np.einsum("ij,ij->i", g, rows_a)
    if norms_b is None:
        norms_b = qfd_row_norms(matrix, rows_b)
    sq = norms_a[:, None] + norms_b[None, :] - 2.0 * (g @ rows_b.T)
    suspect = sq <= RECHECK_REL * (norms_a[:, None] + norms_b[None, :])
    ii, jj = np.nonzero(suspect)
    if ii.size:
        diff = rows_a[ii] - rows_b[jj]
        sq[ii, jj] = np.einsum("ij,ij->i", diff @ matrix, diff)
    return np.sqrt(np.maximum(sq, 0.0))


def l2_cross(
    rows_a: np.ndarray,
    rows_b: np.ndarray,
    *,
    norms_a: np.ndarray | None = None,
    norms_b: np.ndarray | None = None,
) -> np.ndarray:
    """``(a, b)`` L2 distance matrix between two row batches."""
    rows_a = _as64(rows_a)
    rows_b = _as64(rows_b)
    if norms_a is None:
        norms_a = l2_row_norms(rows_a)
    if norms_b is None:
        norms_b = l2_row_norms(rows_b)
    sq = norms_a[:, None] + norms_b[None, :] - 2.0 * (rows_a @ rows_b.T)
    suspect = sq <= RECHECK_REL * (norms_a[:, None] + norms_b[None, :])
    ii, jj = np.nonzero(suspect)
    if ii.size:
        diff = rows_a[ii] - rows_b[jj]
        sq[ii, jj] = np.einsum("ij,ij->i", diff, diff)
    return np.sqrt(np.maximum(sq, 0.0))
