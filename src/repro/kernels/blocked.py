"""Blocked Gram-expansion kernels: tiled, block-size-invariant batch math.

The out-of-core data path (1M x 512-d float32 records in an
:class:`~repro.storage.mmap_store.MmapVectorStore`) cannot afford the
unblocked kernels in :mod:`repro.kernels.gram`: a single one-to-many scan
would materialize full ``n x d`` float64 intermediates (~4 GB at the
paper's testbed scale).  The functions here stream the candidate rows
through cache-sized tiles of ``block_rows`` rows, upcasting each float32
tile to float64 once and accumulating every reduction in float64.

Bitwise block-size invariance
-----------------------------
The whole point of a *tunable* ``block_rows`` is that it must not change
answers: an index built with one tile size has to agree bit-for-bit with
a query served under another, and a heap-resident float64 copy of the
same float32 records must agree with the memory-mapped store.  BLAS
``gemm``/``gemv`` reductions do **not** have this property — their
internal blocking (and therefore the floating-point summation order)
depends on the operand shapes, so tiling a matrix product changes the
last ulps of the result.  Every reduction here therefore uses one of
three primitives whose summation order is fixed per output element,
independent of how many rows share the call:

* ``np.einsum("ij,j->i", tile, v)`` — one-to-many dot products;
* ``np.einsum("ik,jk->ij", a, b)`` — cross/pairwise dot products
  (invariant under tiling of *either* operand);
* per-row ``row @ matrix`` + ``np.dot`` — quadratic-form row norms and
  the cancellation rechecks, evaluated one row at a time so the BLAS
  call shape never varies.

The cancellation guard mirrors :mod:`repro.kernels.gram` (same
``RECHECK_REL`` threshold, same exact difference-based recompute), but
rechecks run per suspect element rather than per suspect batch — batch
shape must not leak into the arithmetic.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .gram import RECHECK_REL

__all__ = [
    "DEFAULT_BLOCK_ROWS",
    "iter_blocks",
    "blocked_qfd_row_norms",
    "blocked_l2_row_norms",
    "blocked_qfd_one_to_many",
    "blocked_l2_one_to_many",
    "blocked_qfd_cross",
    "blocked_l2_cross",
    "blocked_qfd_pairwise",
    "blocked_l2_pairwise",
]

#: Default tile height: 8192 rows x 512 d x 8 B = 32 MB of float64
#: working set per tile — big enough to amortize the per-tile Python
#: overhead, small enough to stay cache/RSS friendly at n = 1M.
DEFAULT_BLOCK_ROWS = 8192


def iter_blocks(n: int, block_rows: int | None) -> Iterator[tuple[int, int]]:
    """Contiguous ``[start, stop)`` row ranges covering ``range(n)``."""
    if block_rows is None or block_rows >= n:
        if n:
            yield 0, n
        return
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    for start in range(0, n, block_rows):
        yield start, min(start + block_rows, n)


def _tile64(rows: np.ndarray, start: int, stop: int) -> np.ndarray:
    """One float64 tile of *rows* (upcast copy only when not float64)."""
    tile = rows[start:stop]
    if tile.dtype != np.float64:
        tile = np.asarray(tile, dtype=np.float64)
    return tile


def _qfd_norm_rows(
    matrix: np.ndarray, tile: np.ndarray, out: np.ndarray, buf: np.ndarray
) -> None:
    """Per-row ``vAv^T`` into *out* — one fixed-shape gemv + dot per row."""
    for i in range(tile.shape[0]):
        row = tile[i]
        np.matmul(row, matrix, out=buf)
        out[i] = np.dot(buf, row)


def _qfd_exact_sq(matrix: np.ndarray, u: np.ndarray, v: np.ndarray) -> float:
    """Exact difference-based squared QFD of one pair (the recheck path)."""
    diff = u - v
    return float(np.dot(diff @ matrix, diff))


def blocked_qfd_row_norms(
    matrix: np.ndarray,
    rows: np.ndarray,
    *,
    block_rows: int | None = None,
) -> np.ndarray:
    """Per-row quadratic forms ``vAv^T``, streamed tile by tile.

    Row-at-a-time evaluation keeps the BLAS call shape constant, so the
    result is bitwise independent of *block_rows* (tiling only sizes the
    float32 -> float64 upcast buffer).
    """
    n = rows.shape[0]
    out = np.empty(n, dtype=np.float64)
    buf = np.empty(matrix.shape[0], dtype=np.float64)
    for start, stop in iter_blocks(n, block_rows):
        _qfd_norm_rows(matrix, _tile64(rows, start, stop), out[start:stop], buf)
    return out


def blocked_l2_row_norms(
    rows: np.ndarray, *, block_rows: int | None = None
) -> np.ndarray:
    """Per-row squared L2 norms ``vv^T``, streamed tile by tile."""
    n = rows.shape[0]
    out = np.empty(n, dtype=np.float64)
    for start, stop in iter_blocks(n, block_rows):
        tile = _tile64(rows, start, stop)
        np.einsum("ij,ij->i", tile, tile, out=out[start:stop])
    return out


def blocked_qfd_one_to_many(
    matrix: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    *,
    row_norms: np.ndarray | None = None,
    q_a: np.ndarray | None = None,
    q_norm: float | None = None,
    block_rows: int | None = None,
) -> np.ndarray:
    """QFD distances from *q* to every row, streamed tile by tile."""
    q64 = np.asarray(q, dtype=np.float64)
    if q_a is None:
        q_a = q64 @ matrix
    if q_norm is None:
        q_norm = float(q_a @ q64)
    n = rows.shape[0]
    out = np.empty(n, dtype=np.float64)
    buf = np.empty(matrix.shape[0], dtype=np.float64)
    for start, stop in iter_blocks(n, block_rows):
        tile = _tile64(rows, start, stop)
        if row_norms is None:
            norms = np.empty(tile.shape[0], dtype=np.float64)
            _qfd_norm_rows(matrix, tile, norms, buf)
        else:
            norms = row_norms[start:stop]
        sq = q_norm + norms - 2.0 * np.einsum("ij,j->i", tile, q_a)
        for i in np.flatnonzero(sq <= RECHECK_REL * (q_norm + norms)):
            sq[i] = _qfd_exact_sq(matrix, tile[i], q64)
        np.sqrt(np.maximum(sq, 0.0), out=out[start:stop])
    return out


def blocked_l2_one_to_many(
    q: np.ndarray,
    rows: np.ndarray,
    *,
    block_rows: int | None = None,
) -> np.ndarray:
    """L2 distances from *q* to every row — tiled difference form.

    The per-row difference + einsum reduction is exactly the arithmetic
    of :func:`repro.kernels.gram.l2_one_to_many`, so the tiled result is
    bitwise identical to the unblocked scan (QMap answers do not move).
    """
    q64 = np.asarray(q, dtype=np.float64)
    n = rows.shape[0]
    out = np.empty(n, dtype=np.float64)
    for start, stop in iter_blocks(n, block_rows):
        diff = _tile64(rows, start, stop) - q64
        np.sqrt(np.einsum("ij,ij->i", diff, diff), out=out[start:stop])
    return out


def blocked_qfd_cross(
    matrix: np.ndarray,
    rows_a: np.ndarray,
    rows_b: np.ndarray,
    *,
    norms_a: np.ndarray | None = None,
    norms_b: np.ndarray | None = None,
    block_rows: int | None = None,
) -> np.ndarray:
    """``(a, b)`` QFD distance matrix, tiled over both row batches."""
    na, nb = rows_a.shape[0], rows_b.shape[0]
    out = np.empty((na, nb), dtype=np.float64)
    buf = np.empty(matrix.shape[0], dtype=np.float64)
    for a0, a1 in iter_blocks(na, block_rows):
        a_tile = _tile64(rows_a, a0, a1)
        g = np.empty_like(a_tile)
        for i in range(a_tile.shape[0]):
            np.matmul(a_tile[i], matrix, out=g[i])
        if norms_a is None:
            n_a = np.array([np.dot(g[i], a_tile[i]) for i in range(a_tile.shape[0])])
        else:
            n_a = norms_a[a0:a1]
        for b0, b1 in iter_blocks(nb, block_rows):
            b_tile = _tile64(rows_b, b0, b1)
            if norms_b is None:
                n_b = np.empty(b_tile.shape[0], dtype=np.float64)
                _qfd_norm_rows(matrix, b_tile, n_b, buf)
            else:
                n_b = norms_b[b0:b1]
            sq = n_a[:, None] + n_b[None, :] - 2.0 * np.einsum("ik,jk->ij", g, b_tile)
            for i, j in zip(*np.nonzero(sq <= RECHECK_REL * (n_a[:, None] + n_b[None, :]))):
                sq[i, j] = _qfd_exact_sq(matrix, a_tile[i], b_tile[j])
            np.sqrt(np.maximum(sq, 0.0), out=out[a0:a1, b0:b1])
    return out


def blocked_l2_cross(
    rows_a: np.ndarray,
    rows_b: np.ndarray,
    *,
    norms_a: np.ndarray | None = None,
    norms_b: np.ndarray | None = None,
    block_rows: int | None = None,
) -> np.ndarray:
    """``(a, b)`` L2 distance matrix, tiled over both row batches."""
    na, nb = rows_a.shape[0], rows_b.shape[0]
    out = np.empty((na, nb), dtype=np.float64)
    for a0, a1 in iter_blocks(na, block_rows):
        a_tile = _tile64(rows_a, a0, a1)
        if norms_a is None:
            n_a = np.einsum("ij,ij->i", a_tile, a_tile)
        else:
            n_a = norms_a[a0:a1]
        for b0, b1 in iter_blocks(nb, block_rows):
            b_tile = _tile64(rows_b, b0, b1)
            if norms_b is None:
                n_b = np.einsum("ij,ij->i", b_tile, b_tile)
            else:
                n_b = norms_b[b0:b1]
            sq = n_a[:, None] + n_b[None, :] - 2.0 * np.einsum("ik,jk->ij", a_tile, b_tile)
            for i, j in zip(*np.nonzero(sq <= RECHECK_REL * (n_a[:, None] + n_b[None, :]))):
                diff = a_tile[i] - b_tile[j]
                sq[i, j] = np.dot(diff, diff)
            np.sqrt(np.maximum(sq, 0.0), out=out[a0:a1, b0:b1])
    return out


def blocked_qfd_pairwise(
    matrix: np.ndarray,
    rows: np.ndarray,
    *,
    row_norms: np.ndarray | None = None,
    block_rows: int | None = None,
) -> np.ndarray:
    """Exactly-symmetric QFD distance matrix over *rows* (zero diagonal).

    Pairwise batches are node-sized in every caller (split candidates,
    medoid sets, pivot pairs), so the ``n x n`` output is materialized;
    tiling bounds only the upcast buffers and the cross-product calls.
    The cross term is symmetrized as ``C + C^T`` exactly like
    :func:`repro.kernels.gram.qfd_squared_pairwise`.
    """
    n = rows.shape[0]
    if row_norms is None:
        row_norms = blocked_qfd_row_norms(matrix, rows, block_rows=block_rows)
    cross = np.empty((n, n), dtype=np.float64)
    for a0, a1 in iter_blocks(n, block_rows):
        a_tile = _tile64(rows, a0, a1)
        g = np.empty_like(a_tile)
        for i in range(a_tile.shape[0]):
            np.matmul(a_tile[i], matrix, out=g[i])
        for b0, b1 in iter_blocks(n, block_rows):
            b_tile = _tile64(rows, b0, b1)
            np.einsum("ik,jk->ij", g, b_tile, out=cross[a0:a1, b0:b1])
    sq = row_norms[:, None] + row_norms[None, :] - (cross + cross.T)
    np.fill_diagonal(sq, 0.0)
    suspect = sq <= RECHECK_REL * (row_norms[:, None] + row_norms[None, :])
    np.fill_diagonal(suspect, False)
    ii, jj = np.nonzero(np.triu(suspect, 1))
    for i, j in zip(ii, jj):
        u = np.asarray(rows[i], dtype=np.float64)
        v = np.asarray(rows[j], dtype=np.float64)
        exact = _qfd_exact_sq(matrix, u, v)
        sq[i, j] = exact
        sq[j, i] = exact
    return np.sqrt(np.maximum(sq, 0.0))


def blocked_l2_pairwise(
    rows: np.ndarray,
    *,
    row_norms: np.ndarray | None = None,
    block_rows: int | None = None,
) -> np.ndarray:
    """Exactly-symmetric L2 distance matrix over *rows* (zero diagonal)."""
    n = rows.shape[0]
    if row_norms is None:
        row_norms = blocked_l2_row_norms(rows, block_rows=block_rows)
    cross = np.empty((n, n), dtype=np.float64)
    for a0, a1 in iter_blocks(n, block_rows):
        a_tile = _tile64(rows, a0, a1)
        for b0, b1 in iter_blocks(n, block_rows):
            b_tile = _tile64(rows, b0, b1)
            np.einsum("ik,jk->ij", a_tile, b_tile, out=cross[a0:a1, b0:b1])
    sq = row_norms[:, None] + row_norms[None, :] - (cross + cross.T)
    np.fill_diagonal(sq, 0.0)
    suspect = sq <= RECHECK_REL * (row_norms[:, None] + row_norms[None, :])
    np.fill_diagonal(suspect, False)
    ii, jj = np.nonzero(np.triu(suspect, 1))
    for i, j in zip(ii, jj):
        diff = np.asarray(rows[i], dtype=np.float64) - np.asarray(rows[j], dtype=np.float64)
        exact = np.dot(diff, diff)
        sq[i, j] = exact
        sq[j, i] = exact
    return np.sqrt(np.maximum(sq, 0.0))
