"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Specific subclasses mirror the
distinct failure modes of the paper's pipeline: bad QFD matrices, shape
mismatches between vectors and matrices, misuse of index structures and
storage-layer faults.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "MatrixError",
    "NotPositiveDefiniteError",
    "NotSymmetricError",
    "DimensionMismatchError",
    "IndexStateError",
    "EmptyIndexError",
    "QueryError",
    "StorageError",
    "PageError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class MatrixError(ReproError, ValueError):
    """A QFD matrix is malformed (wrong shape, dtype, or content)."""


class NotPositiveDefiniteError(MatrixError):
    """The QFD matrix is not strictly positive-definite.

    Raised by the Cholesky decomposition (Algorithm 1 of the paper) when a
    pivot becomes non-positive, which is exactly the paper's
    ``"Matrix is not positive definite!"`` error branch.
    """


class NotSymmetricError(MatrixError):
    """A matrix required to be symmetric is not.

    Section 3.2.3 of the paper shows any general QFD matrix can be replaced
    by an equivalent symmetric one; code paths that require the caller to
    have done so raise this error instead of silently symmetrizing.
    """


class DimensionMismatchError(ReproError, ValueError):
    """Vector/matrix dimensionalities do not agree."""


class IndexStateError(ReproError, RuntimeError):
    """An index operation was issued in an invalid state.

    Examples: querying an unbuilt pivot table, inserting into a frozen
    index, or re-building an already built structure.
    """


class EmptyIndexError(IndexStateError):
    """A query was issued against an index that contains no objects."""


class QueryError(ReproError, ValueError):
    """A similarity query is malformed (negative radius, k < 1, ...)."""


class StorageError(ReproError, IOError):
    """The paged-storage substrate failed."""


class PageError(StorageError):
    """A page id is out of range or a page payload is malformed."""
