"""Figure 7 — 1NN queries on growing databases: M-tree.

Paper result: the QMap M-tree answers 1NN queries up to 200x faster —
the ``x`` distance computations of the traversal drop from O(n^2) to O(n).
"""

from __future__ import annotations

import functools

import pytest

from _common import SIZES, get_workload, print_header, report_sweep
from repro.bench import sweep_sizes
from repro.models import QFDModel, QMapModel

CAPACITY = 16


@functools.lru_cache(maxsize=None)
def _index(model_name: str, m: int):
    workload = get_workload().prefix(m)
    model = QFDModel(workload.matrix) if model_name == "qfd" else QMapModel(workload.matrix)
    return model.build_index("mtree", workload.database, capacity=CAPACITY)


@pytest.mark.parametrize("m", SIZES)
def test_fig7_1nn_qfd(benchmark, m: int) -> None:
    index = _index("qfd", m)
    queries = get_workload().queries
    benchmark(lambda: [index.knn_search(q, 1) for q in queries])


@pytest.mark.parametrize("m", SIZES)
def test_fig7_1nn_qmap(benchmark, m: int) -> None:
    index = _index("qmap", m)
    queries = get_workload().queries
    benchmark(lambda: [index.knn_search(q, 1) for q in queries])


def main() -> None:
    print_header("Figure 7", f"1NN query real time vs database size, M-tree (capacity={CAPACITY})")
    comparisons = sweep_sizes(
        get_workload(), "mtree", SIZES, method_kwargs={"capacity": CAPACITY}, k=1
    )
    print(report_sweep(comparisons, metric="querying", title="(seconds per 1NN query)"))
    print(
        "\npaper shape check: QMap wins by 1-2 orders of magnitude "
        "(paper reports a 200x speedup)."
    )


if __name__ == "__main__":
    main()
