"""CI smoke: scrape a live ``repro query --serve-metrics`` run over HTTP.

Spawns ``repro query`` with a telemetry endpoint on an auto-assigned
port and a short ``--serve-hold``, parses the flushed ``serving  :``
line for the bound URL, and — while the child is still holding the
endpoint open — fetches

* ``/healthz``   (must answer ``ok``),
* ``/metrics``   — scraped twice: once immediately (mid-run: must be
  valid Prometheus text per the repo's strict conformance parser), and
  once after the child prints its ``costs    :`` line, when the
  query-phase ``repro_distance_evaluations_total`` samples must sum to
  exactly the evaluation count the child printed,
* ``/snapshot.json`` (must be JSON with a non-empty metrics list).

Exits non-zero on any failure; no third-party dependencies (urllib +
the in-repo parser only).

Usage::

    PYTHONPATH=src python benchmarks/ci_scrape_smoke.py [--size N]
        [--queries Q] [--hold SECONDS]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

from repro.obs import parse_prometheus_text  # noqa: E402


def _fail(child: subprocess.Popen, message: str) -> "int":
    child.terminate()
    out, _ = child.communicate(timeout=30)
    print(f"FAIL: {message}", file=sys.stderr)
    print(f"child output:\n{out}", file=sys.stderr)
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--size", type=int, default=400)
    parser.add_argument("--queries", type=int, default=50)
    parser.add_argument("--hold", type=float, default=20.0)
    args = parser.parse_args()

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    cmd = [
        sys.executable,
        "-u",
        "-m",
        "repro",
        "query",
        "--method",
        "mtree",
        "--size",
        str(args.size),
        "--queries",
        str(args.queries),
        "--k",
        "10",
        "--batch",
        "--serve-metrics",
        "127.0.0.1:0",
        "--serve-hold",
        str(args.hold),
    ]
    child = subprocess.Popen(
        cmd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    # The serving line is printed (flushed) before the batch starts.
    url = None
    assert child.stdout is not None
    for line in child.stdout:
        if line.startswith("serving  :"):
            url = line.split()[2]
            break
    if url is None:
        return _fail(child, "child never printed a 'serving  :' line")
    print(f"scraping {url}")

    try:
        with urllib.request.urlopen(f"{url}/healthz", timeout=10) as resp:
            health = resp.read().decode("utf-8")
        if health.strip() != "ok":
            return _fail(child, f"/healthz answered {health!r}, expected 'ok'")
        print("healthz  : ok")

        # First scrape, racing the run itself: whatever is there must
        # already be well-formed exposition text.
        with urllib.request.urlopen(f"{url}/metrics", timeout=10) as resp:
            content_type = resp.headers.get("Content-Type", "")
            text = resp.read().decode("utf-8")
        if "text/plain" not in content_type:
            return _fail(child, f"/metrics content-type {content_type!r}")
        live_samples = parse_prometheus_text(text)
        print(f"mid-run  : {len(live_samples)} samples, all valid")

        # Wait for the batch to finish (the child prints its exact
        # distance-evaluation count), then the counter must agree.
        printed_evals = None
        for line in child.stdout:
            if line.startswith("costs    :"):
                printed_evals = int(line.split(":", 1)[1].split()[0])
                break
        if printed_evals is None:
            return _fail(child, "child never printed a 'costs    :' line")
        with urllib.request.urlopen(f"{url}/metrics", timeout=10) as resp:
            samples = parse_prometheus_text(resp.read().decode("utf-8"))
        if not samples:
            return _fail(child, "/metrics parsed to zero samples")
        counted = sum(
            s.value
            for s in samples
            if s.name == "repro_distance_evaluations_total"
            and s.label_dict.get("phase") == "query"
        )
        if int(counted) != printed_evals:
            return _fail(
                child,
                "repro_distance_evaluations_total (phase=query) is "
                f"{counted:g}, child printed {printed_evals}",
            )
        names = {s.name for s in samples}
        print(
            f"metrics  : {len(samples)} samples, {len(names)} series names; "
            f"query-phase evaluations == printed costs == {printed_evals}"
        )

        with urllib.request.urlopen(f"{url}/snapshot.json", timeout=10) as resp:
            snapshot = json.loads(resp.read().decode("utf-8"))
        if not snapshot.get("metrics"):
            return _fail(child, "/snapshot.json has no metrics")
        print(f"snapshot : {len(snapshot['metrics'])} metric entries")
    except OSError as exc:
        return _fail(child, f"scrape failed: {exc}")

    # Done scraping — stop the hold early and drain the child.
    child.terminate()
    out, _ = child.communicate(timeout=30)
    tail = [line for line in out.splitlines() if line.strip()][-3:]
    for line in tail:
        print(f"child    : {line}")
    print("scrape smoke: PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
