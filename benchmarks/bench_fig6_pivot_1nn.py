"""Figure 6 — 1NN queries on growing databases: pivot tables.

Paper result: QMap wins, but by less than for the other MAMs (24x in the
paper): the pivot filter leaves few candidates ``x``, so a larger share of
query time is spent scanning the distance matrix — overhead both models
share (Section 4.2.2 / 5.3).
"""

from __future__ import annotations

import functools

import pytest

from _common import SIZES, get_workload, print_header, report_sweep
from repro.bench import sweep_sizes
from repro.models import QFDModel, QMapModel

N_PIVOTS = 32


@functools.lru_cache(maxsize=None)
def _index(model_name: str, m: int):
    workload = get_workload().prefix(m)
    model = QFDModel(workload.matrix) if model_name == "qfd" else QMapModel(workload.matrix)
    return model.build_index("pivot-table", workload.database, n_pivots=N_PIVOTS)


@pytest.mark.parametrize("m", SIZES)
def test_fig6_1nn_qfd(benchmark, m: int) -> None:
    index = _index("qfd", m)
    queries = get_workload().queries
    benchmark(lambda: [index.knn_search(q, 1) for q in queries])


@pytest.mark.parametrize("m", SIZES)
def test_fig6_1nn_qmap(benchmark, m: int) -> None:
    index = _index("qmap", m)
    queries = get_workload().queries
    benchmark(lambda: [index.knn_search(q, 1) for q in queries])


def main() -> None:
    print_header("Figure 6", f"1NN query real time vs database size, pivot table (p={N_PIVOTS})")
    comparisons = sweep_sizes(
        get_workload(), "pivot-table", SIZES, method_kwargs={"n_pivots": N_PIVOTS}, k=1
    )
    print(report_sweep(comparisons, metric="querying", title="(seconds per 1NN query)"))
    print(
        "\npaper shape check: QMap wins, by a smaller factor than the "
        "sequential file / M-tree (paper: 24x vs 227x/200x) — few "
        "candidates survive the filter, so shared overhead dominates."
    )


if __name__ == "__main__":
    main()
