"""Figure 5 — 1NN queries on growing databases: sequential file.

Paper result: the QMap sequential scan is up to 227x faster per query —
m distances at O(n) instead of O(n^2), plus one O(n^2) query transform.
"""

from __future__ import annotations

import functools

import pytest

from _common import SIZES, get_workload, print_header, report_sweep
from repro.bench import sweep_sizes
from repro.models import QFDModel, QMapModel


@functools.lru_cache(maxsize=None)
def _index(model_name: str, m: int):
    workload = get_workload().prefix(m)
    model = QFDModel(workload.matrix) if model_name == "qfd" else QMapModel(workload.matrix)
    return model.build_index("sequential", workload.database)


@pytest.mark.parametrize("m", SIZES)
def test_fig5_1nn_qfd(benchmark, m: int) -> None:
    index = _index("qfd", m)
    queries = get_workload().queries
    benchmark(lambda: [index.knn_search(q, 1) for q in queries])


@pytest.mark.parametrize("m", SIZES)
def test_fig5_1nn_qmap(benchmark, m: int) -> None:
    index = _index("qmap", m)
    queries = get_workload().queries
    benchmark(lambda: [index.knn_search(q, 1) for q in queries])


def main() -> None:
    print_header("Figure 5", "1NN query real time vs database size, sequential file")
    comparisons = sweep_sizes(get_workload(), "sequential", SIZES, k=1)
    print(report_sweep(comparisons, metric="querying", title="(seconds per 1NN query)"))
    print(
        "\npaper shape check: QMap wins by 1-2 orders of magnitude and "
        "both curves grow linearly in m (paper reports up to 227x)."
    )


if __name__ == "__main__":
    main()
