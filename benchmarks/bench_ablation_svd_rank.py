"""Ablation E_A1 — rank-k SVD lower bound: tightness vs false positives.

Reproduces the Section 2.3.1 critique of the pre-QMap transformational
approaches: the rank-k reduction is only contractive, and as k shrinks the
lower bounds loosen, the filter admits more false positives, and every one
of them costs a full O(n^2) QFD refinement.  At k = n the bound is exact —
which is the QMap observation itself.
"""

from __future__ import annotations

import functools

import pytest

from _common import get_workload, print_header
from repro.bench import format_table
from repro.core import QuadraticFormDistance
from repro.lowerbound import FilterRefineScan, SVDReduction

KS = [2, 4, 8, 16, 64, 256, 512]


@functools.lru_cache(maxsize=None)
def _scan(k: int) -> FilterRefineScan:
    workload = get_workload()
    qfd = QuadraticFormDistance(workload.matrix)
    return FilterRefineScan(workload.database, SVDReduction(qfd, min(k, workload.dim)))


@pytest.mark.parametrize("k", [2, 16, 64])
def test_svd_filter_refine_knn(benchmark, k: int) -> None:
    scan = _scan(k)
    queries = get_workload().queries
    benchmark(lambda: [scan.knn_search(q, 5) for q in queries])


def test_candidates_shrink_with_rank() -> None:
    workload = get_workload()
    counts = []
    for k in (2, 16, workload.dim):
        scan = _scan(k)
        total = 0
        for q in workload.queries:
            scan.knn_search(q, 5)
            total += scan.last_stats.candidates
        counts.append(total)
    assert counts[0] >= counts[1] >= counts[2]


def main() -> None:
    print_header("Ablation E_A1", "SVD rank-k lower bound: candidates vs target rank")
    workload = get_workload()
    rows = []
    for k in KS:
        if k > workload.dim:
            continue
        scan = _scan(k)
        reduction = scan.bound
        candidates = 0
        for q in workload.queries:
            scan.knn_search(q, 5)
            candidates += scan.last_stats.candidates
        per_query = candidates / workload.queries.shape[0]
        rows.append(
            [
                k,
                f"{reduction.spectrum_coverage:.4f}",
                f"{per_query:.1f}",
                f"{per_query / workload.size:.3f}",
            ]
        )
    print(
        format_table(
            ["rank k", "spectrum coverage", "QFD refinements / 5NN query", "candidate ratio"],
            rows,
        )
    )
    print(
        "\npaper shape check: candidates (false positives) grow as k "
        "shrinks (Section 2.3.1 drawback #2); k = n is exact — the QMap "
        "observation."
    )


if __name__ == "__main__":
    main()
