"""Planner pick vs a best-of-all-alternatives oracle — regret on E_A4.

The cost-based planner (:mod:`repro.planner`) prices every alternative —
direct scans under both models, filter-and-refine pipelines, and one
probe per cataloged snapshot — from Table 2 closed forms and snapshot
headers, then picks the argmin.  This bench asks the only question that
matters about a cost model: *how much does trusting the prediction cost
versus an oracle that runs everything?*

On the E_A4-style workload (64-d histograms, Lab-prototype matrix, fixed
paper seed) it snapshots the closed-form qmap and qfd indexes into a
scratch catalog, plans the kNN batch with the uncalibrated cost model,
then executes **every** considered alternative over the full batch and
measures actual arithmetic in the cost model's unit.  Reported per plan:
predicted vs actual flops/query, whether its answers match the
sequential-QFD baseline, and the headline **regret** — chosen plan's
actual cost over the oracle minimum (1.0 = the planner picked the true
best).

Expected shape: the planner never picks the raw-QFD scan (m*n^2/query is
the ceiling every other plan undercuts), its pick's answers are
baseline-identical, and regret stays O(1) — the closed forms rank plans
correctly even before calibration.
"""

from __future__ import annotations

import argparse
import functools
import tempfile
from pathlib import Path

import numpy as np

from _common import write_report
from repro.bench import format_table
from repro.datasets import histogram_workload
from repro.models import QFDModel, QMapModel
from repro.models.planning import materialize_plan, plan_query_batch
from repro.planner import ExecutorChoice

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_planner.json"

#: E_A4 profile: 4 bins/channel -> 64-d histograms, fixed paper seed.
M = 1_000
M_SMOKE = 240
N_QUERIES = 10
BINS = 4
N_PIVOTS = 16
CAPACITY = 16
K = 10

#: Snapshots offered to the planner: method x model, the closed-form
#: structures the paper's Table 2 prices (same kwargs as the CLI gate).
SNAPSHOT_GRID = (
    ("pivot-table", "qmap"),
    ("pivot-table", "qfd"),
    ("mtree", "qmap"),
    ("mtree", "qfd"),
)


@functools.lru_cache(maxsize=None)
def _workload(m: int):
    return histogram_workload(m, N_QUERIES, bins_per_channel=BINS, seed=2011)


@functools.lru_cache(maxsize=None)
def _snapshot_dir(m: int) -> str:
    """Build and save the snapshot grid into a per-size scratch catalog."""
    workload = _workload(m)
    tmp = tempfile.mkdtemp(prefix="bench_planner_")
    for method, model_name in SNAPSHOT_GRID:
        model_cls = QMapModel if model_name == "qmap" else QFDModel
        kwargs = (
            {"n_pivots": N_PIVOTS} if method == "pivot-table" else {"capacity": CAPACITY}
        )
        built = model_cls(workload.matrix).build_index(
            method, workload.database, **kwargs
        )
        built.save(str(Path(tmp) / f"{method}_{model_name}.npz"))
    return tmp


def _neighbor_ids(batch_results) -> "list[tuple[int, ...]]":
    return [tuple(int(n.index) for n in result) for result in batch_results]


def _measure(m: int) -> dict:
    """Plan the kNN batch, then oracle-run every considered alternative.

    Every alternative is materialized fresh and run serially over the
    full query batch so the actual-flops counters are deterministic and
    comparable; the oracle is the per-query-actual argmin among the
    alternatives that materialize and answer identically to the
    sequential-QFD baseline.
    """
    workload = _workload(m)
    planned = plan_query_batch(
        workload.matrix,
        workload.database,
        workload.queries,
        k=K,
        index_dir=_snapshot_dir(m),
    )
    baseline = None
    rows = []
    for candidate in planned.choice.considered:
        try:
            execution = materialize_plan(
                candidate.plan,
                workload.matrix,
                workload.database,
                executor=ExecutorChoice(name="serial"),
                batch_size=N_QUERIES,
            )
        except Exception as exc:  # noqa: BLE001 - report, don't abort the sweep
            rows.append({"plan": candidate.name, "error": str(exc)})
            continue
        if execution.index is not None:
            execution.index.reset_query_costs()
        answers = _neighbor_ids(execution.run_batch(workload.queries, k=K))
        if candidate.name == "scan[qfd]":
            baseline = answers
        actual = execution.actual_flops()
        rows.append(
            {
                "plan": candidate.name,
                "predicted_per_query": candidate.cost.per_query_flops,
                "predicted_total": candidate.total_flops,
                "actual_total": actual,
                "actual_per_query": actual / N_QUERIES,
                "chosen": candidate.chosen,
                "answers": answers,
            }
        )
    assert baseline is not None, "scan[qfd] must always be a considered plan"
    for row in rows:
        if "answers" in row:
            row["matches_baseline"] = row.pop("answers") == baseline
    return {"choice": planned.choice, "rows": rows}


def _regret(rows: "list[dict]") -> "tuple[dict, dict]":
    """(chosen row, oracle row): oracle = actual argmin among correct plans."""
    ran = [r for r in rows if "actual_per_query" in r and r["matches_baseline"]]
    chosen = next(r for r in ran if r["chosen"])
    oracle = min(ran, key=lambda r: r["actual_per_query"])
    return chosen, oracle


def test_planner_pick_is_near_oracle() -> None:
    """The acceptance check, also run under plain pytest (smoke size)."""
    measured = _measure(M_SMOKE)
    chosen, oracle = _regret(measured["rows"])
    # Never the raw-QFD scan: everything else undercuts m*n^2 per query.
    assert chosen["plan"] != "scan[qfd]"
    assert chosen["matches_baseline"]
    scan_qfd = next(r for r in measured["rows"] if r["plan"] == "scan[qfd]")
    assert chosen["actual_per_query"] < scan_qfd["actual_per_query"]
    # Regret is bounded: trusting the uncalibrated closed forms costs at
    # most a small constant factor over the run-everything oracle.
    regret = chosen["actual_per_query"] / oracle["actual_per_query"]
    assert regret < 10.0, regret


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"small workload (m={M_SMOKE}), no JSON written (CI liveness check)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=f"output path (default: {DEFAULT_OUT}; never written in --smoke)",
    )
    args = parser.parse_args()

    m = M_SMOKE if args.smoke else M
    workload = _workload(m)
    print()
    print("=" * 72)
    print("Cost-based planner: predicted pick vs best-of-all-alternatives oracle")
    print(
        f"testbed: {workload.name}, m={m}, {N_QUERIES} held-out queries, "
        f"{K}NN, catalog: {len(SNAPSHOT_GRID)} snapshots "
        f"(p={N_PIVOTS}, capacity={CAPACITY}), uncalibrated cost model"
    )
    print("=" * 72)

    measured = _measure(m)
    rows = measured["rows"]
    chosen, oracle = _regret(rows)
    regret = chosen["actual_per_query"] / oracle["actual_per_query"]

    table = []
    for row in sorted(
        rows, key=lambda r: r.get("actual_per_query", float("inf"))
    ):
        if "error" in row:
            table.append([row["plan"], "-", "-", "-", "-", f"error: {row['error']}"])
            continue
        marks = []
        if row["chosen"]:
            marks.append("chosen")
        if row is oracle:
            marks.append("oracle")
        table.append(
            [
                row["plan"],
                f"{row['predicted_per_query']:.4g}",
                f"{row['actual_per_query']:.4g}",
                f"{row['predicted_per_query'] / row['actual_per_query']:.2f}x",
                "yes" if row["matches_baseline"] else "NO",
                ", ".join(marks),
            ]
        )
    print(
        format_table(
            [
                "plan",
                "predicted/query",
                "actual/query",
                "pred/actual",
                "answers ok",
                "",
            ],
            table,
            title="considered alternatives over the full query batch (flops)",
        )
    )
    verdict = "OK" if chosen["plan"] != "scan[qfd]" and regret < 10.0 else "FAILED"
    print(
        f"\npick: {chosen['plan']} at {chosen['actual_per_query']:.4g} "
        f"flops/query; oracle: {oracle['plan']} at "
        f"{oracle['actual_per_query']:.4g} -> regret {regret:.3f}x [{verdict}]"
    )

    report = {
        "benchmark": "planner_regret",
        "config": {
            "m": m,
            "n_queries": N_QUERIES,
            "bins_per_channel": BINS,
            "n_pivots": N_PIVOTS,
            "capacity": CAPACITY,
            "k": K,
            "seed": 2011,
            "smoke": args.smoke,
            "chosen": chosen["plan"],
            "oracle": oracle["plan"],
        },
        "results": [
            {k: v for k, v in row.items()} for row in rows
        ]
        + [
            {
                "plan": "summary",
                "regret": regret,
                "chosen_actual_per_query": chosen["actual_per_query"],
                "oracle_actual_per_query": oracle["actual_per_query"],
            }
        ],
    }

    if args.smoke and args.out is None:
        print("smoke run: machinery OK, no JSON written")
        return
    out = args.out if args.out is not None else DEFAULT_OUT
    write_report(report, out)


if __name__ == "__main__":
    main()
