"""Run every per-figure/per-table benchmark report in sequence.

Usage::

    python benchmarks/run_all.py            # paper-dim profile (512-d)
    REPRO_BENCH_SCALE=small python benchmarks/run_all.py   # fast 64-d

Set ``REPRO_BENCH_PROFILE=PATH[:HZ]`` to sample the whole sweep with the
built-in profiler and write a flamegraph-ready profile to ``PATH``
(speedscope JSON for ``.json``, collapsed stacks otherwise).

The output of this script is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import importlib
import sys
import time

REPORTS = [
    "bench_table1_indexing",
    "bench_table2_querying",
    "bench_fig2_seqfile_indexing",
    "bench_fig3_pivot_indexing",
    "bench_fig4_mtree_indexing",
    "bench_fig5_seqfile_1nn",
    "bench_fig6_pivot_1nn",
    "bench_fig7_mtree_1nn",
    "bench_fig8_pivot_knn",
    "bench_fig9_mtree_knn",
    "bench_ablation_svd_rank",
    "bench_ablation_pivot_count",
    "bench_ablation_dimensionality",
    "bench_ablation_disk_cache",
    "bench_ablation_mtree_split",
    "bench_ablation_mtree_bulk",
    "bench_ablation_intrinsic_dim",
    "bench_ablation_approximate",
    "bench_ablation_trigen",
    "bench_extra_access_methods",
]


def main() -> None:
    from _common import maybe_profile

    start = time.perf_counter()
    with maybe_profile():
        for name in REPORTS:
            module = importlib.import_module(name)
            module.main()
    print(f"\nall reports done in {time.perf_counter() - start:.1f}s")


if __name__ == "__main__":
    sys.path.insert(0, str(__file__).rsplit("/", 1)[0])
    main()
