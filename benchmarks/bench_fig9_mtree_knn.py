"""Figure 9 — kNN queries on the largest database: M-tree.

Paper result: the QMap M-tree is up to 47x faster across k = 1..100 on the
largest database.
"""

from __future__ import annotations

import functools

import pytest

from _common import MAX_DB, get_workload, print_header
from repro.bench import format_table, measure_queries, speedup
from repro.models import QFDModel, QMapModel

CAPACITY = 16
KS = [1, 5, 10, 25, 50, 100]


@functools.lru_cache(maxsize=None)
def _index(model_name: str):
    workload = get_workload()
    model = QFDModel(workload.matrix) if model_name == "qfd" else QMapModel(workload.matrix)
    return model.build_index("mtree", workload.database, capacity=CAPACITY)


@pytest.mark.parametrize("k", KS)
def test_fig9_knn_qfd(benchmark, k: int) -> None:
    index = _index("qfd")
    queries = get_workload().queries
    benchmark(lambda: [index.knn_search(q, k) for q in queries])


@pytest.mark.parametrize("k", KS)
def test_fig9_knn_qmap(benchmark, k: int) -> None:
    index = _index("qmap")
    queries = get_workload().queries
    benchmark(lambda: [index.knn_search(q, k) for q in queries])


def main() -> None:
    print_header(
        "Figure 9", f"kNN query real time on the largest database (m={MAX_DB}), M-tree"
    )
    workload = get_workload()
    qfd_index, qmap_index = _index("qfd"), _index("qmap")
    rows = []
    for k in KS:
        r_qfd = measure_queries(qfd_index, workload.queries, k=k)
        r_qmap = measure_queries(qmap_index, workload.queries, k=k)
        rows.append(
            [
                k,
                f"{r_qfd.seconds_per_query:.4f}",
                f"{r_qmap.seconds_per_query:.4f}",
                f"{speedup(r_qfd.seconds_per_query, r_qmap.seconds_per_query):.1f}x",
                int(r_qfd.evaluations_per_query),
            ]
        )
    print(
        format_table(
            ["k", "QFD model [s]", "QMap model [s]", "speedup", "dist. evals"],
            rows,
            title="(seconds per kNN query)",
        )
    )
    print(
        "\npaper shape check: QMap wins at every k (paper: up to 47x), "
        "by a larger factor than the pivot table (Figure 8)."
    )


if __name__ == "__main__":
    main()
