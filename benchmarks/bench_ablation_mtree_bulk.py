"""Ablation E_A8 — M-tree construction: dynamic inserts vs bulk loading.

The paper builds its M-tree "by dynamic insertions in the same way as
B-tree" (Section 4.3); bulk loading is the classic alternative (Ciaccia &
Patella).  The bench compares build cost, tree shape and query pruning for
both, in the QMap model where every distance is O(n).
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from _common import get_workload, print_header
from repro.bench import format_table, measure_queries
from repro.models import QMapModel

M = 2_000
CAPACITY = 16


@functools.lru_cache(maxsize=None)
def _index(mode: str):
    workload = get_workload().prefix(M)
    return QMapModel(workload.matrix).build_index(
        "mtree",
        workload.database,
        capacity=CAPACITY,
        bulk_load=(mode == "bulk"),
        rng=np.random.default_rng(9),
    )


@pytest.mark.parametrize("mode", ["dynamic", "bulk"])
def test_build(benchmark, mode: str) -> None:
    workload = get_workload().prefix(M)
    model = QMapModel(workload.matrix)
    benchmark.pedantic(
        lambda: model.build_index(
            "mtree",
            workload.database,
            capacity=CAPACITY,
            bulk_load=(mode == "bulk"),
            rng=np.random.default_rng(9),
        ),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("mode", ["dynamic", "bulk"])
def test_query(benchmark, mode: str) -> None:
    index = _index(mode)
    queries = get_workload().queries
    benchmark(lambda: [index.knn_search(q, 5) for q in queries])


def test_both_modes_exact() -> None:
    workload = get_workload().prefix(M)
    q = workload.queries[0]
    a = _index("dynamic").knn_search(q, 10)
    b = _index("bulk").knn_search(q, 10)
    assert [n.index for n in a] == [n.index for n in b]


def main() -> None:
    print_header("Ablation E_A8", f"M-tree dynamic vs bulk construction (m={M})")
    workload = get_workload().prefix(M)
    rows = []
    for mode in ("dynamic", "bulk"):
        index = _index(mode)
        tree = index.access_method
        result = measure_queries(index, workload.queries, k=5)
        rows.append(
            [
                mode,
                index.build_costs.distance_computations,
                f"{index.build_costs.seconds:.3f}",
                tree.height(),
                tree.node_count(),
                f"{result.evaluations_per_query:.1f}",
            ]
        )
    print(
        format_table(
            ["construction", "build evals", "build [s]", "height", "nodes", "evals / 5NN"],
            rows,
        )
    )
    print(
        "\nexpected: bulk loading yields a shallower, more compact tree; "
        "query pruning is comparable or better."
    )


if __name__ == "__main__":
    main()
