"""Batch-engine throughput — QFD vs QMap queries/sec across worker counts.

The batch engine (``repro.engine``) executes a whole query workload
through one planner: a vectorized per-method fast path (the pivot table
builds a single ``m x s`` lower-bound matrix for the chunk) plus a
pluggable executor that spreads chunks over threads.  This bench measures
the end-to-end effect on the paper's central comparison: queries per
second of the QFD model vs the QMap model on the pivot table, swept over
1/2/4/8 thread workers, against the plain per-query loop as baseline.

Two caveats the numbers carry:

* Thread scaling is bounded by physical cores.  The numpy kernels that
  dominate a query (the lower-bound scan and the refinement distances)
  release the GIL, so on a multi-core host the thread executor scales
  until the memory bus saturates — but on a single-core host the sweep
  is flat by construction.  The report prints ``os.cpu_count()`` next to
  the table so the sweep is read against the hardware that produced it.
* The QFD/QMap *speedup* is worker-independent: both models run the same
  number of logical distance evaluations (asserted by the trace line at
  the bottom of the report), so parallelism rescales both columns alike.
"""

from __future__ import annotations

import argparse
import functools
import os
import time
from pathlib import Path

import pytest

from _common import get_workload, print_header, write_report
from repro.bench import format_table, metrics_block, speedup
from repro.engine import TraceCollector
from repro.models import BuiltIndex, QFDModel, QMapModel
from repro.obs import MetricsRegistry, use_registry

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_batch_throughput.json"

#: Thread-executor worker counts swept by the report.
WORKER_GRID = [1, 2, 4, 8]
M = 2_000
N_QUERIES = 100
K = 10
N_PIVOTS = 16


@functools.lru_cache(maxsize=None)
def _index(model_name: str) -> BuiltIndex:
    workload = get_workload(M, N_QUERIES)
    model_cls = QMapModel if model_name == "qmap" else QFDModel
    model = model_cls(workload.matrix)
    return model.build_index(
        "pivot-table", workload.database, n_pivots=N_PIVOTS
    )


def _queries():
    return get_workload(M, N_QUERIES).queries


def _run_loop(index: BuiltIndex) -> list:
    return [index.knn_search(q, K) for q in _queries()]


def _run_batch(index: BuiltIndex, workers: int, collector=None) -> list:
    return index.knn_search_batch(
        _queries(),
        K,
        executor="serial" if workers == 1 else "thread",
        workers=workers,
        collector=collector,
    )


@pytest.mark.parametrize("model_name", ["qfd", "qmap"])
def test_batch_loop_baseline(benchmark, model_name: str) -> None:
    """Per-query loop: the pre-engine baseline."""
    index = _index(model_name)
    benchmark(lambda: _run_loop(index))


@pytest.mark.parametrize("workers", WORKER_GRID)
@pytest.mark.parametrize("model_name", ["qfd", "qmap"])
def test_batch_engine(benchmark, model_name: str, workers: int) -> None:
    """Batch engine at 1 (serial fast path) .. 8 thread workers."""
    index = _index(model_name)
    benchmark(lambda: _run_batch(index, workers))


def _measure(fn, repeats: int = 3) -> float:
    """Best-of-N wall time in seconds (pytest-benchmark covers the rest)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="report only, no JSON written (CI liveness check)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=f"output path (default: {DEFAULT_OUT}; never written in --smoke)",
    )
    args = parser.parse_args()

    print_header(
        "Batch throughput",
        f"pivot-table {K}NN via the batch engine (m={M}, q={N_QUERIES})",
    )
    cores = os.cpu_count() or 1
    print(
        f"host: {cores} CPU core(s) available — thread speedup is capped "
        f"near min(workers, cores); expect a flat sweep on 1 core"
    )

    report = {
        "benchmark": "batch_throughput",
        "structure": "pivot-table",
        "query": "knn",
        "config": {
            "m": M,
            "n_queries": N_QUERIES,
            "k": K,
            "n_pivots": N_PIVOTS,
            "worker_grid": WORKER_GRID,
            "cpu_cores": cores,
            "smoke": args.smoke,
        },
        "results": [],
    }
    rows = []
    qps = {}
    for label, runner in [("loop", None)] + [
        (f"thread x{w}" if w > 1 else "batch serial", w) for w in WORKER_GRID
    ]:
        per_model = {}
        for model_name in ("qfd", "qmap"):
            index = _index(model_name)
            if runner is None:
                seconds = _measure(lambda: _run_loop(index))
            else:
                seconds = _measure(lambda: _run_batch(index, runner))
            per_model[model_name] = N_QUERIES / seconds
        qps[label] = per_model
        report["results"].append(
            {
                "execution": label,
                "workers": runner,
                "qfd_qps": per_model["qfd"],
                "qmap_qps": per_model["qmap"],
            }
        )
        rows.append(
            [
                label,
                f"{per_model['qfd']:.1f}",
                f"{per_model['qmap']:.1f}",
                f"{speedup(1.0 / per_model['qfd'], 1.0 / per_model['qmap']):.1f}x",
                f"{per_model['qmap'] / qps['loop']['qmap']:.2f}x",
            ]
        )
    print(
        format_table(
            [
                "execution",
                "QFD [q/s]",
                "QMap [q/s]",
                "QFD->QMap",
                "QMap vs loop",
            ],
            rows,
            title=f"{K}NN throughput, pivot-table (p={N_PIVOTS})",
        )
    )

    # Cost-model sanity: both models must spend identical logical distance
    # evaluations per query — the paper's machine-independent invariant —
    # and the traces must agree with the model-level counters.  This pass
    # runs under a live metrics registry, so the report's ``metrics``
    # block carries the full observability snapshot (batch wall time,
    # per-query evaluation histograms, throughput gauges).
    registry = MetricsRegistry()
    with use_registry(registry):
        for model_name in ("qfd", "qmap"):
            index = _index(model_name)
            index.reset_query_costs()
            collector = TraceCollector()
            _run_batch(index, 4, collector)
            summary = collector.summary()
            counted = index.query_costs().distance_computations
            print(
                f"{model_name:4s} trace: {summary.evaluations_per_query:.1f} "
                f"evals/query ({summary.scalar_evaluations} scalar + "
                f"{summary.batched_evaluations} batched; model counter "
                f"{counted}, traces {'agree' if summary.distance_evaluations == counted else 'DISAGREE'}; "
                f"batch wall {summary.batch_seconds:.3f}s "
                f"-> {summary.queries_per_second:.1f} q/s)"
            )
    report["metrics"] = metrics_block(registry)
    print(
        "\npaper shape check: the QFD->QMap speedup column is constant "
        "across executors — parallelism accelerates both models equally "
        "because they evaluate the same number of distances; QMap's edge "
        "is purely the O(n) vs O(n^2) per-evaluation cost."
    )

    if args.smoke and args.out is None:
        print("smoke run: machinery OK, no JSON written")
        return
    out = args.out if args.out is not None else DEFAULT_OUT
    write_report(report, out)


if __name__ == "__main__":
    main()
