"""Ablation E_A7 — intrinsic dimensionality is invariant under QMap.

Paper Section 2.2: MAM complexity is determined by the distance
distribution (Chávez's rho = mu^2 / 2 sigma^2), not the embedding
dimensionality.  Because the QMap transformation preserves every distance,
the QFD space and its Euclidean image share one distribution — which is
why both models spend the *same number* of distance computations and the
speedup comes purely from the per-evaluation cost.

The report also shows that the QFD geometry differs from naive L2 on the
raw histograms: the correlation matrix genuinely reshapes the space.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import get_workload, print_header
from repro.analysis import intrinsic_dimensionality, sample_distances
from repro.bench import format_table
from repro.core import QMap, QuadraticFormDistance
from repro.distances import euclidean

N_PAIRS = 2_000


def _spaces():
    workload = get_workload()
    data = workload.database[:1000]
    qfd = QuadraticFormDistance(workload.matrix)
    mapped = QMap(qfd).transform_batch(data)
    return [
        ("QFD on raw histograms", data, qfd),
        ("L2 on QMap image", mapped, euclidean),
        ("naive L2 on raw histograms", data, euclidean),
    ]


@pytest.mark.parametrize("label", [name for name, _, _ in _spaces()])
def test_sample_distance_distribution(benchmark, label: str) -> None:
    spaces = {name: (rows, dist) for name, rows, dist in _spaces()}
    rows, dist = spaces[label]
    benchmark(
        lambda: sample_distances(rows, dist, n_pairs=200, rng=np.random.default_rng(1))
    )


def test_idim_invariant_under_qmap() -> None:
    spaces = _spaces()
    rho = {}
    for name, rows, dist in spaces:
        sample = sample_distances(rows, dist, n_pairs=N_PAIRS, rng=np.random.default_rng(7))
        rho[name] = intrinsic_dimensionality(sample)
    assert rho["QFD on raw histograms"] == pytest.approx(
        rho["L2 on QMap image"], rel=1e-6
    )


def main() -> None:
    print_header("Ablation E_A7", "intrinsic dimensionality across spaces")
    rows_out = []
    for name, rows, dist in _spaces():
        sample = sample_distances(rows, dist, n_pairs=N_PAIRS, rng=np.random.default_rng(7))
        rho = intrinsic_dimensionality(sample)
        rows_out.append(
            [name, f"{sample.mean():.4f}", f"{sample.std():.4f}", f"{rho:.2f}"]
        )
    print(format_table(["space", "mean dist", "std dist", "intrinsic dim rho"], rows_out))
    print(
        "\nexpected: rows 1 and 2 identical (QMap preserves the "
        "distribution exactly); row 3 differs (the QFD matrix genuinely "
        "reshapes the geometry)."
    )


if __name__ == "__main__":
    main()
