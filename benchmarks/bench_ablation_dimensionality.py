"""Ablation E_A3 — dimensionality sweep: the QFD/QMap gap grows with n.

The per-evaluation costs are O(n^2) vs O(n), so the sequential-scan query
speedup should grow roughly linearly with the histogram dimensionality —
this is why the paper's 512-d testbed shows such dramatic factors.
"""

from __future__ import annotations

import functools

import pytest

from _common import print_header
from repro.bench import format_table, measure_queries, speedup
from repro.datasets import histogram_workload
from repro.models import QFDModel, QMapModel

#: bins/channel -> n = bins^3: 8-d, 64-d, 512-d.
BINS = [2, 4, 8]
M = 1_000


@functools.lru_cache(maxsize=None)
def _workload(bins: int):
    return histogram_workload(M, 10, bins_per_channel=bins, seed=99)


@functools.lru_cache(maxsize=None)
def _index(bins: int, model_name: str):
    workload = _workload(bins)
    model = QFDModel(workload.matrix) if model_name == "qfd" else QMapModel(workload.matrix)
    return model.build_index("sequential", workload.database)


@pytest.mark.parametrize("bins", BINS)
@pytest.mark.parametrize("model_name", ["qfd", "qmap"])
def test_dim_sweep_1nn(benchmark, bins: int, model_name: str) -> None:
    index = _index(bins, model_name)
    queries = _workload(bins).queries
    benchmark(lambda: [index.knn_search(q, 1) for q in queries])


def test_speedup_grows_with_dimensionality() -> None:
    factors = []
    for bins in (2, 8):
        workload = _workload(bins)
        t_qfd = measure_queries(_index(bins, "qfd"), workload.queries, k=1).seconds_per_query
        t_qmap = measure_queries(_index(bins, "qmap"), workload.queries, k=1).seconds_per_query
        factors.append(speedup(t_qfd, t_qmap))
    assert factors[1] > factors[0]


def main() -> None:
    print_header("Ablation E_A3", f"dimensionality sweep (sequential scan, m={M})")
    rows = []
    for bins in BINS:
        workload = _workload(bins)
        t_qfd = measure_queries(_index(bins, "qfd"), workload.queries, k=1).seconds_per_query
        t_qmap = measure_queries(_index(bins, "qmap"), workload.queries, k=1).seconds_per_query
        rows.append(
            [
                workload.dim,
                f"{t_qfd:.5f}",
                f"{t_qmap:.5f}",
                f"{speedup(t_qfd, t_qmap):.1f}x",
            ]
        )
    print(format_table(["n", "QFD [s/query]", "QMap [s/query]", "speedup"], rows))
    print(
        "\nexpected: the speedup grows with n (O(n^2) vs O(n) per "
        "evaluation) — at n=512 the gap matches the paper's regime."
    )


if __name__ == "__main__":
    main()
