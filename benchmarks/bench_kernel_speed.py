"""Kernel-layer speed benchmark: scalar vs node-batched vs Gram kernel.

Times M-tree kNN querying under three evaluation strategies over the *same*
tree, for the QFD model (raw histograms + quadratic form) and the QMap
model (Cholesky-mapped vectors + L2), at n in {64, 256, 512}:

* ``scalar``       — one Python-level distance call per candidate, the
  pre-kernel fallback path (``use_kernel=False``, no vectorized form);
* ``node_batched`` — all entries of a visited node evaluated through the
  metric's own one-to-many form (diff-based, O(n^2) per row);
* ``gram_kernel``  — the :mod:`repro.kernels` query context: ``qA`` and
  ``qAq^T`` precomputed once per query, cached ``vAv^T`` per row, O(n) per
  candidate.

All three tiers traverse identically and charge identical logical distance
counts (asserted); only the physical evaluation differs.  The full run
writes ``BENCH_kernels.json`` at the repository root; ``--smoke`` runs a
tiny grid without writing, as a CI liveness check.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel_speed.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

import numpy as np

from _common import write_report
from repro.core.qfd import QuadraticFormDistance
from repro.core.qmap import QMap
from repro.datasets import vector_workload
from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.bench import metrics_block
from repro.mam import MTree
from repro.mam.base import DistancePort
from repro.obs import MetricsRegistry, span, use_registry

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _scalar_only(func):
    """Hide *func*'s identity so no kernel or vectorized form resolves."""

    def call(u, v):
        return float(func(u, v))

    return call


def _tier_ports(model: str, matrix: np.ndarray) -> dict[str, DistancePort]:
    """The three evaluation strategies for one model's metric."""
    if model == "qfd":
        qfd = QuadraticFormDistance(matrix)
        return {
            "scalar": DistancePort(
                CountingDistance(_scalar_only(qfd)), use_kernel=False
            ),
            "node_batched": DistancePort(
                CountingDistance(qfd, one_to_many=qfd.one_to_many), use_kernel=False
            ),
            "gram_kernel": DistancePort(
                CountingDistance(qfd, one_to_many=qfd.one_to_many)
            ),
        }
    return {
        "scalar": DistancePort(
            CountingDistance(_scalar_only(euclidean)), use_kernel=False
        ),
        "node_batched": DistancePort(
            CountingDistance(euclidean, one_to_many=euclidean_one_to_many),
            use_kernel=False,
        ),
        "gram_kernel": DistancePort(
            CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        ),
    }


def _time_queries(tree: MTree, queries: np.ndarray, k: int, repeats: int) -> float:
    """Best-of-*repeats* wall time of the whole kNN query batch."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for q in queries:
            tree.knn_search(q, k)
        best = min(best, time.perf_counter() - start)
    return best


def run_model(
    model: str,
    dim: int,
    *,
    m: int,
    n_queries: int,
    k: int,
    capacity: int,
    repeats: int,
) -> dict:
    workload = vector_workload(m, n_queries, dim, seed=2011)
    if model == "qfd":
        data, queries = workload.database, workload.queries
    else:
        qmap = QMap(workload.matrix)
        data = qmap.transform_batch(workload.database)
        queries = qmap.transform_batch(workload.queries)

    ports = _tier_ports(model, workload.matrix)
    # One tree, three evaluation strategies: the structure is built once
    # (with the kernel port) and the port swapped per tier, so the timing
    # isolates the query hot path.
    build_start = time.perf_counter()
    tree = MTree(data, ports["gram_kernel"], capacity=capacity)
    build_seconds = time.perf_counter() - build_start

    entry: dict = {
        "model": model,
        "dim": dim,
        "build_seconds": build_seconds,
        "tiers": {},
    }
    reference: list[list] = []
    counts: dict[str, int] = {}
    for tier, port in ports.items():
        tree._port = port
        port.attach_database(tree.database)
        counter: CountingDistance = port.raw  # type: ignore[assignment]
        counter.reset()
        seconds = _time_queries(tree, queries, k, repeats)
        counts[tier] = counter.count // repeats
        results = [tree.knn_search(q, k) for q in queries]
        if not reference:
            reference = results
        else:
            for got, want in zip(results, reference):
                assert [n.index for n in got] == [n.index for n in want], (
                    f"{model}/n={dim}: tier {tier} changed the neighbor set"
                )
                assert all(
                    abs(g.distance - w.distance) <= 1e-6 for g, w in zip(got, want)
                ), f"{model}/n={dim}: tier {tier} drifted distances past 1e-6"
        entry["tiers"][tier] = {"seconds": seconds, "distance_count": counts[tier]}
    assert len(set(counts.values())) == 1, (
        f"{model}/n={dim}: logical distance counts differ across tiers: {counts}"
    )
    scalar_s = entry["tiers"]["scalar"]["seconds"]
    entry["speedup_node_batched"] = scalar_s / entry["tiers"]["node_batched"]["seconds"]
    entry["speedup_gram_kernel"] = scalar_s / entry["tiers"]["gram_kernel"]["seconds"]
    return entry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid, no JSON written (CI liveness check)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=f"output path (default: {DEFAULT_OUT}; never written in --smoke)",
    )
    args = parser.parse_args()

    if args.smoke:
        dims, m, n_queries, k, repeats = [64], 150, 3, 5, 1
    else:
        dims, m, n_queries, k, repeats = [64, 256, 512], 800, 10, 10, 3
    capacity = 8

    report = {
        "benchmark": "kernel_speed",
        "structure": "mtree",
        "query": "knn",
        "config": {
            "m": m,
            "n_queries": n_queries,
            "k": k,
            "capacity": capacity,
            "dims": dims,
            "repeats": repeats,
            "smoke": args.smoke,
        },
        "results": [],
    }
    header = f"{'model':>6} {'n':>4} {'scalar':>10} {'node-batch':>11} {'gram':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    # The measured grid runs under a live metrics registry so the JSON
    # report carries an observability ``metrics`` block (span timings per
    # model x dim cell) alongside the raw tier numbers.
    registry = MetricsRegistry()
    with use_registry(registry):
        for dim in dims:
            for model in ("qfd", "qmap"):
                with span("bench/kernel_speed", model=model, dim=str(dim)):
                    entry = run_model(
                        model,
                        dim,
                        m=m,
                        n_queries=n_queries,
                        k=k,
                        capacity=capacity,
                        repeats=repeats,
                    )
                report["results"].append(entry)
                tiers = entry["tiers"]
                print(
                    f"{model:>6} {dim:>4} "
                    f"{tiers['scalar']['seconds']:>10.4f} "
                    f"{tiers['node_batched']['seconds']:>11.4f} "
                    f"{tiers['gram_kernel']['seconds']:>10.4f} "
                    f"{entry['speedup_gram_kernel']:>7.1f}x"
                )
    report["metrics"] = metrics_block(registry)

    if args.smoke and args.out is None:
        print("smoke run: machinery OK, no JSON written")
        return
    out = args.out if args.out is not None else DEFAULT_OUT
    write_report(report, out)


if __name__ == "__main__":
    main()
