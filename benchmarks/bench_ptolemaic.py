"""Ptolemaic vs triangle pivot bounds — filtering power and distance cost.

The paper's Table 2 charges the pivot table ``x`` refinement distances,
where ``x`` is the candidate-set size the lower bound failed to filter;
under the raw QFD the triangle bound is weak and ``x`` stays large.  The
QFD is a *Ptolemaic* metric (QMap embeds it isometrically into L2), so
Hetland's pivot-pair bound applies — this bench measures, on the
E_A4-style QFD workload (64-d histograms, Lab-prototype matrix), how much
of that budget the ``bound="ptolemaic"`` / ``bound="best"`` pivot table
recovers: candidate-set sizes for range queries and logical distance
evaluations for range and kNN, under both models.

Expected shape: Ptolemaic filtering yields a strictly smaller total
candidate set than triangle filtering (asserted by the report), with
``best`` at least as tight as either; query-time charging stays ``p``
pivot distances + one per verified candidate in every mode, so the
candidate column *is* the cost story.
"""

from __future__ import annotations

import argparse
import functools
from pathlib import Path

import pytest

from _common import write_report
from repro.bench import format_table
from repro.datasets import calibrate_radius, histogram_workload
from repro.models import BuiltIndex, QFDModel, QMapModel

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_ptolemaic.json"

#: E_A4 profile: 4 bins/channel -> 64-d histograms, fixed paper seed.
M = 1_000
N_QUERIES = 10
BINS = 4
N_PIVOTS = 16
K = 10
TARGET_RESULTS = 10

BOUNDS = ("triangle", "ptolemaic", "best")


@functools.lru_cache(maxsize=1)
def _workload():
    return histogram_workload(M, N_QUERIES, bins_per_channel=BINS, seed=2011)


@functools.lru_cache(maxsize=1)
def _radius() -> float:
    return calibrate_radius(_workload(), TARGET_RESULTS)


@functools.lru_cache(maxsize=None)
def _index(model_name: str, bound: str) -> BuiltIndex:
    workload = _workload()
    model_cls = QMapModel if model_name == "qmap" else QFDModel
    # Same selection rng in every mode -> identical pivots, so the bound
    # is the only variable between the columns.
    return model_cls(workload.matrix).build_index(
        "pivot-table", workload.database, n_pivots=N_PIVOTS, bound=bound
    )


@pytest.mark.parametrize("bound", BOUNDS)
@pytest.mark.parametrize("model_name", ["qfd", "qmap"])
def test_range_query(benchmark, model_name: str, bound: str) -> None:
    index = _index(model_name, bound)
    queries, radius = _workload().queries, _radius()
    benchmark(lambda: [index.range_search(q, radius) for q in queries])


@pytest.mark.parametrize("bound", BOUNDS)
def test_knn_query(benchmark, bound: str) -> None:
    index = _index("qfd", bound)
    queries = _workload().queries
    benchmark(lambda: [index.knn_search(q, K) for q in queries])


def _measure(model_name: str, bound: str) -> dict:
    """Candidate-set size and distance counts for one model x bound cell.

    The candidate count is derived from the exact charging model: a range
    query pays ``p`` query-to-pivot distances plus one per candidate the
    lower bound failed to filter, so ``candidates = evals - queries * p``
    — the same ``x`` the paper's Table 2 charges, for either model.
    """
    workload, radius = _workload(), _radius()
    index = _index(model_name, bound)
    index.reset_query_costs()
    results = 0
    for q in workload.queries:
        results += len(index.range_search(q, radius))
    range_evals = index.query_costs().distance_computations
    candidates = range_evals - N_QUERIES * N_PIVOTS
    index.reset_query_costs()
    for q in workload.queries:
        index.knn_search(q, K)
    knn_evals = index.query_costs().distance_computations
    return {
        "model": model_name,
        "bound": bound,
        "build_evaluations": index.build_costs.distance_computations,
        "range_candidates": candidates,
        "range_evaluations": range_evals,
        "range_results": results,
        "knn_evaluations": knn_evals,
    }


def test_ptolemaic_filters_strictly_better() -> None:
    """The acceptance check, also run under plain pytest."""
    for model_name in ("qfd", "qmap"):
        tri = _measure(model_name, "triangle")
        pto = _measure(model_name, "ptolemaic")
        best = _measure(model_name, "best")
        assert pto["range_candidates"] < tri["range_candidates"], model_name
        assert best["range_candidates"] <= pto["range_candidates"], model_name
        # Same answers regardless of the bound.
        assert pto["range_results"] == tri["range_results"] == best["range_results"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="report only, no JSON written (CI liveness check)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=f"output path (default: {DEFAULT_OUT}; never written in --smoke)",
    )
    args = parser.parse_args()

    workload, radius = _workload(), _radius()
    print()
    print("=" * 72)
    print("Ptolemaic bounds: triangle vs ptolemaic vs best (pivot table)")
    print(
        f"testbed: {workload.name}, m={M}, {N_QUERIES} held-out queries, "
        f"p={N_PIVOTS}, range r={radius:.4g} (~{TARGET_RESULTS} results), {K}NN"
    )
    print("=" * 72)

    report = {
        "benchmark": "ptolemaic_bounds",
        "structure": "pivot-table",
        "config": {
            "m": M,
            "n_queries": N_QUERIES,
            "bins_per_channel": BINS,
            "n_pivots": N_PIVOTS,
            "k": K,
            "radius": radius,
            "seed": 2011,
            "smoke": args.smoke,
        },
        "results": [],
    }
    rows = []
    measured: dict[tuple[str, str], dict] = {}
    for model_name in ("qfd", "qmap"):
        for bound in BOUNDS:
            cell = _measure(model_name, bound)
            measured[(model_name, bound)] = cell
            report["results"].append(cell)
            rows.append(
                [
                    model_name,
                    bound,
                    cell["build_evaluations"],
                    cell["range_candidates"],
                    cell["range_evaluations"],
                    cell["knn_evaluations"],
                ]
            )
    print(
        format_table(
            [
                "model",
                "bound",
                "build evals",
                "range candidates",
                "range evals",
                "kNN evals",
            ],
            rows,
            title="filtering power over the full query workload (totals)",
        )
    )

    ok = True
    for model_name in ("qfd", "qmap"):
        tri = measured[(model_name, "triangle")]["range_candidates"]
        pto = measured[(model_name, "ptolemaic")]["range_candidates"]
        verdict = "OK" if pto < tri else "FAILED"
        ok = ok and pto < tri
        print(
            f"{model_name:4s}: ptolemaic candidates {pto} vs triangle {tri} "
            f"-> strictly smaller [{verdict}]"
        )
    report["config"]["strictly_smaller"] = ok
    print(
        "\npaper extension: a 'third column' for Table 2 — same query "
        "charging, tighter x. The Ptolemaic bound costs p(p-1)/2 extra "
        "build distances (the pivot-pair matrix) and nothing at query time."
    )

    if args.smoke and args.out is None:
        print("smoke run: machinery OK, no JSON written")
        return
    out = args.out if args.out is not None else DEFAULT_OUT
    write_report(report, out)


if __name__ == "__main__":
    main()
