"""Figure 2 — Indexing: sequential file (QFD model vs QMap model).

Paper result: this is the *only* configuration where the QFD model wins —
indexing a sequential file is just storing vectors (O(mn)), while the QMap
model additionally transforms every vector (O(mn^2)).

Run ``pytest benchmarks/bench_fig2_seqfile_indexing.py --benchmark-only``
for timings, or ``python benchmarks/bench_fig2_seqfile_indexing.py`` for
the paper-style series table.
"""

from __future__ import annotations

import pytest

from _common import SIZES, get_workload, print_header, report_sweep
from repro.bench import sweep_sizes
from repro.models import QFDModel, QMapModel


@pytest.mark.parametrize("m", SIZES)
def test_fig2_indexing_qfd(benchmark, m: int) -> None:
    workload = get_workload().prefix(m)
    model = QFDModel(workload.matrix)
    benchmark.pedantic(
        lambda: model.build_index("sequential", workload.database),
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("m", SIZES)
def test_fig2_indexing_qmap(benchmark, m: int) -> None:
    workload = get_workload().prefix(m)
    model = QMapModel(workload.matrix)
    benchmark.pedantic(
        lambda: model.build_index("sequential", workload.database),
        rounds=3,
        iterations=1,
    )


def main() -> None:
    print_header("Figure 2", "indexing real time, sequential file")
    comparisons = sweep_sizes(get_workload(), "sequential", SIZES, k=1)
    print(report_sweep(comparisons, metric="indexing", title=""))
    print(
        "\npaper shape check: the QFD model should be FASTER here "
        "(storing beats transform-then-store; Table 1, row 1)."
    )


if __name__ == "__main__":
    main()
