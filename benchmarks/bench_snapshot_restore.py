"""Snapshot-restore benchmark: rebuilding an index vs restoring a snapshot.

For each registered access method, in both models, this bench:

1. builds the index over a synthetic histogram workload and records the
   distance evaluations and wall time the build paid;
2. snapshots it with :meth:`BuiltIndex.save` (pickle-free ``.npz``);
3. restores it with ``load_index`` and records the restore's distance
   evaluations (asserted **zero** — the entire point of structural
   snapshots) and wall time;
4. runs the workload's kNN queries against both copies and asserts the
   answers are bit-identical.

The QFD model covers every MAM; the QMap model additionally covers the
SAMs (R-tree, X-tree, VA-file), which only exist behind the Euclidean
transform.  The full run writes ``BENCH_snapshot.json`` at the repository
root; ``--smoke`` runs a tiny grid without writing, as a CI liveness
check.

Usage::

    PYTHONPATH=src python benchmarks/bench_snapshot_restore.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from pathlib import Path

from _common import write_report
from repro.bench import metrics_block
from repro.datasets import histogram_workload
from repro.models import QFDModel, QMapModel
from repro.obs import MetricsRegistry, use_registry

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_snapshot.json"

#: Construction arguments per method (sized for the bench workload).
METHOD_KWARGS: dict[str, dict[str, int]] = {
    "pivot-table": {"n_pivots": 16},
    "mindex": {"n_pivots": 16},
    "mtree": {"capacity": 16},
    "paged-mtree": {"capacity": 16},
    "vptree": {"leaf_size": 8},
    "gnat": {"arity": 4, "leaf_size": 8},
    "rtree": {"capacity": 16},
    "xtree": {"capacity": 16},
    "vafile": {"bits": 4},
}

MAM_METHODS = (
    "sequential",
    "disk-sequential",
    "pivot-table",
    "mtree",
    "paged-mtree",
    "mindex",
    "sat",
    "vptree",
    "gnat",
)
SAM_METHODS = ("rtree", "xtree", "vafile")


def run_method(model, method: str, workload, k: int, tmpdir: str) -> dict:
    """Build, save, restore and cross-check one (model, method) pair."""
    kwargs = METHOD_KWARGS.get(method, {})
    built = model.build_index(method, workload.database, **kwargs)
    build = built.build_costs

    path = os.path.join(tmpdir, f"{model.name}_{method}")
    save_start = time.perf_counter()
    saved = built.save(path)
    save_seconds = time.perf_counter() - save_start

    restored = model.load_index(saved)
    restore = restored.build_costs
    assert restore.distance_computations == 0, (
        f"{model.name}/{method}: restore paid "
        f"{restore.distance_computations} distance evaluations, expected 0"
    )
    assert restore.transforms == 0, (
        f"{model.name}/{method}: restore paid {restore.transforms} transforms"
    )

    for q in workload.queries:
        got = [(n.index, n.distance) for n in restored.knn_search(q, k)]
        want = [(n.index, n.distance) for n in built.knn_search(q, k)]
        assert got == want, (
            f"{model.name}/{method}: restored index answers differ"
        )

    return {
        "model": model.name,
        "method": method,
        "kwargs": kwargs,
        "build": {
            "distance_computations": build.distance_computations,
            "transforms": build.transforms,
            "seconds": build.seconds,
        },
        "snapshot_bytes": os.path.getsize(saved),
        "save_seconds": save_seconds,
        "restore": {
            "distance_computations": restore.distance_computations,
            "transforms": restore.transforms,
            "seconds": restore.seconds,
        },
        "restore_speedup": build.seconds / restore.seconds
        if restore.seconds > 0
        else float("inf"),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid, no JSON written (CI liveness check)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=f"output path (default: {DEFAULT_OUT}; never written in --smoke)",
    )
    args = parser.parse_args()

    if args.smoke:
        m, n_queries, bins, k = 120, 3, 4, 5
        mams: tuple[str, ...] = ("pivot-table", "mtree")
        sams: tuple[str, ...] = ("vafile",)
    else:
        m, n_queries, bins, k = 1000, 10, 4, 10
        mams, sams = MAM_METHODS, SAM_METHODS

    workload = histogram_workload(m, n_queries, bins_per_channel=bins, seed=2011)
    qfd = QFDModel(workload.matrix)
    qmap = QMapModel(workload.matrix)

    report = {
        "benchmark": "snapshot_restore",
        "config": {
            "m": m,
            "n_queries": n_queries,
            "bins_per_channel": bins,
            "k": k,
            "smoke": args.smoke,
        },
        "results": [],
    }
    header = (
        f"{'model':>6} {'method':>16} {'build-evals':>12} {'build-s':>9} "
        f"{'restore-evals':>13} {'restore-s':>10} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    # Run under a live metrics registry: build_index/load_index emit
    # build/load spans and phase="build" distance counters, so the JSON
    # report's ``metrics`` block mirrors the table (and shows restores
    # paying zero distance evaluations).
    registry = MetricsRegistry()
    with tempfile.TemporaryDirectory() as tmpdir, use_registry(registry):
        pairs = [(qfd, method) for method in mams]
        pairs += [(qmap, method) for method in (*mams, *sams)]
        for model, method in pairs:
            entry = run_method(model, method, workload, k, tmpdir)
            report["results"].append(entry)
            print(
                f"{entry['model']:>6} {entry['method']:>16} "
                f"{entry['build']['distance_computations']:>12} "
                f"{entry['build']['seconds']:>9.3f} "
                f"{entry['restore']['distance_computations']:>13} "
                f"{entry['restore']['seconds']:>10.4f} "
                f"{entry['restore_speedup']:>7.1f}x"
            )
    report["metrics"] = metrics_block(registry)

    if args.smoke and args.out is None:
        print("smoke run: machinery OK, no JSON written")
        return
    out = args.out if args.out is not None else DEFAULT_OUT
    write_report(report, out)


if __name__ == "__main__":
    main()
