"""Ablation E_A6 — "indexed by any MAM or SAM" (paper Section 2.4).

The QMap model's selling point is that the transformed database lives in a
perfectly ordinary Euclidean space: this bench runs *every* access method
in the registry — the three the paper analyzes plus vp-tree, GNAT, R-tree
and VA-file — on the same transformed workload and reports per-query cost.
All answers are identical (the correctness suite asserts this); the
interesting column is the distance evaluations, where the curse of
dimensionality treats the coordinate-based SAMs visibly worse than the
distance-based MAMs at n=512.
"""

from __future__ import annotations

import functools

import pytest

from _common import get_workload, print_header
from repro.bench import format_table, measure_queries
from repro.models import MAM_REGISTRY, SAM_REGISTRY, QMapModel

M = 2_000

_KWARGS = {
    "sequential": {},
    "disk-sequential": {"cache_pages": 64},
    "pivot-table": {"n_pivots": 32},
    "mtree": {"capacity": 16},
    "paged-mtree": {"capacity": 16, "cache_pages": 32},
    "vptree": {"leaf_size": 16},
    "gnat": {"arity": 8, "leaf_size": 24},
    "mindex": {"n_pivots": 32},
    "sat": {},
    "rtree": {"capacity": 16},
    "xtree": {"capacity": 16, "max_overlap": 0.75},
    "vafile": {"bits": 4},
}

ALL_METHODS = sorted(MAM_REGISTRY) + sorted(SAM_REGISTRY)


@functools.lru_cache(maxsize=None)
def _index(method: str):
    workload = get_workload().prefix(M)
    return QMapModel(workload.matrix).build_index(
        method, workload.database, **_KWARGS[method]
    )


@pytest.mark.parametrize("method", ALL_METHODS)
def test_access_method_5nn(benchmark, method: str) -> None:
    index = _index(method)
    queries = get_workload().queries
    benchmark(lambda: [index.knn_search(q, 5) for q in queries])


def test_all_methods_prune_below_scan() -> None:
    workload = get_workload().prefix(M)
    scan_cost = measure_queries(_index("sequential"), workload.queries, k=5)
    for method in ("pivot-table", "mtree", "vptree", "gnat"):
        cost = measure_queries(_index(method), workload.queries, k=5)
        assert cost.evaluations_per_query < scan_cost.evaluations_per_query, method


def main() -> None:
    print_header("Ablation E_A6", f"every MAM and SAM on the QMap space (m={M}, 5NN)")
    workload = get_workload().prefix(M)
    rows = []
    for method in ALL_METHODS:
        index = _index(method)
        result = measure_queries(index, workload.queries, k=5)
        kind = "SAM" if method in SAM_REGISTRY else "MAM"
        rows.append(
            [
                method,
                kind,
                index.build_costs.distance_computations,
                f"{result.evaluations_per_query:.1f}",
                f"{result.seconds_per_query:.5f}",
            ]
        )
    print(
        format_table(
            ["method", "kind", "build dist. evals", "evals / query", "s / query"],
            rows,
        )
    )
    print(
        "\npaper shape check: any access method works on the transformed "
        "space; at n=512 the MAMs prune while the coordinate-based SAMs "
        "feel the curse of dimensionality (Section 2.1)."
    )


if __name__ == "__main__":
    main()
