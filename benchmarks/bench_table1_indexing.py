"""Table 1 — Indexing time complexity comparison (empirical verification).

For each MAM and model the bench measures distance evaluations and
transforms during indexing, converts them into the paper's arithmetic cost
units (QFD evaluation = n^2, L2 evaluation = n, transform = n^2) and prints
them next to the Table 1 closed forms, including the "Better" verdict:

    sequential file : QFD model better
    pivot tables    : QMap model better
    M-tree          : QMap model better
"""

from __future__ import annotations

import pytest

from _common import MAX_DB, get_workload, print_header
from repro.bench import format_table, measured_flops, theoretical_indexing_flops
from repro.models import QFDModel, QMapModel

N_PIVOTS = 32
CAPACITY = 16

_METHODS = [
    ("sequential", {}),
    ("pivot-table", {"n_pivots": N_PIVOTS}),
    ("mtree", {"capacity": CAPACITY}),
]


def _build_costs(method: str, kwargs: dict, model_name: str, m: int):
    workload = get_workload().prefix(m)
    model = QFDModel(workload.matrix) if model_name == "qfd" else QMapModel(workload.matrix)
    return model.build_index(method, workload.database, **kwargs).build_costs


@pytest.mark.parametrize("method,kwargs", _METHODS, ids=[m for m, _ in _METHODS])
@pytest.mark.parametrize("model_name", ["qfd", "qmap"])
def test_table1_indexing_cost(benchmark, method: str, kwargs: dict, model_name: str) -> None:
    m = MAX_DB // 2
    benchmark.pedantic(
        lambda: _build_costs(method, kwargs, model_name, m), rounds=1, iterations=1
    )


def test_table1_winners_match_paper() -> None:
    """The qualitative Table 1 verdicts, checked on measured flops."""
    m = MAX_DB // 2
    n = get_workload().dim
    flops = {
        (method, model): measured_flops(_build_costs(method, kwargs, model, m), model, n)
        for method, kwargs in _METHODS
        for model in ("qfd", "qmap")
    }
    assert flops[("sequential", "qfd")] < flops[("sequential", "qmap")]
    assert flops[("pivot-table", "qmap")] < flops[("pivot-table", "qfd")]
    assert flops[("mtree", "qmap")] < flops[("mtree", "qfd")]


def main() -> None:
    print_header("Table 1", "indexing time complexity comparison")
    workload = get_workload()
    n = workload.dim
    m = workload.size
    rows = []
    for method, kwargs in _METHODS:
        flops = {}
        for model in ("qfd", "qmap"):
            costs = _build_costs(method, kwargs, model, m)
            flops[model] = measured_flops(costs, model, n)
            theory = theoretical_indexing_flops(
                method,
                model,
                m=m,
                n=n,
                p=N_PIVOTS,
                selection_cost=costs.distance_computations if method == "pivot-table" else 0,
            )
            rows.append(
                [
                    f"{method} ({model.upper()})",
                    costs.distance_computations,
                    costs.transforms,
                    f"{flops[model]:.2e}",
                    f"{theory:.2e}",
                ]
            )
        better = "QFD" if flops["qfd"] < flops["qmap"] else "QMap"
        rows.append([f"  -> better: {better}", "", "", "", ""])
    print(
        format_table(
            ["method (model)", "dist. evals", "transforms", "measured flops", "O-form flops"],
            rows,
        )
    )
    print(
        "\npaper verdicts (Table 1): sequential -> QFD; pivot tables -> QMap; "
        "M-tree -> QMap."
    )


if __name__ == "__main__":
    main()
