"""Ablation E_A2 — pivot count sweep (pivot table, QMap model).

More pivots tighten the L∞ filter (fewer refinements per query) but cost
more at indexing time and per-query pivot distances — the classic pivot
table trade-off behind the paper's choice of a fixed p.
"""

from __future__ import annotations

import functools

import pytest

from _common import get_workload, print_header
from repro.bench import format_table, measure_queries
from repro.models import QMapModel

PIVOT_COUNTS = [2, 8, 32, 128]


@functools.lru_cache(maxsize=None)
def _index(p: int):
    workload = get_workload()
    return QMapModel(workload.matrix).build_index(
        "pivot-table", workload.database, n_pivots=p
    )


@pytest.mark.parametrize("p", PIVOT_COUNTS)
def test_pivot_count_query(benchmark, p: int) -> None:
    index = _index(p)
    queries = get_workload().queries
    benchmark(lambda: [index.knn_search(q, 5) for q in queries])


def test_more_pivots_fewer_refinements() -> None:
    workload = get_workload()
    refinements = []
    for p in (2, 128):
        result = measure_queries(_index(p), workload.queries, k=5)
        refinements.append(result.evaluations_per_query - p)
    assert refinements[1] < refinements[0]


def main() -> None:
    print_header("Ablation E_A2", "pivot count sweep (QMap model, 5NN)")
    workload = get_workload()
    rows = []
    for p in PIVOT_COUNTS:
        index = _index(p)
        result = measure_queries(index, workload.queries, k=5)
        rows.append(
            [
                p,
                index.build_costs.distance_computations,
                f"{result.evaluations_per_query - p:.1f}",
                f"{result.seconds_per_query:.5f}",
            ]
        )
    print(
        format_table(
            ["pivots p", "build dist. evals", "refinements / query", "s / query"],
            rows,
        )
    )
    print("\nexpected: refinements fall as p grows; build cost rises linearly in p.")


if __name__ == "__main__":
    main()
