"""Ablation E_A5 — M-tree split policy: mM_RAD vs random promotion.

DESIGN.md design-choice ablation: the mM_RAD policy (minimize the larger
covering radius) costs more at build time but yields tighter regions and
therefore fewer distance evaluations per query than random promotion.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from _common import get_workload, print_header
from repro.bench import format_table, measure_queries
from repro.models import QMapModel

M = 2_000
CAPACITY = 16


@functools.lru_cache(maxsize=None)
def _index(policy: str):
    workload = get_workload().prefix(M)
    return QMapModel(workload.matrix).build_index(
        "mtree",
        workload.database,
        capacity=CAPACITY,
        split_policy=policy,
        rng=np.random.default_rng(5),
    )


@pytest.mark.parametrize("policy", ["mM_RAD", "random"])
def test_split_policy_query(benchmark, policy: str) -> None:
    index = _index(policy)
    queries = get_workload().queries
    benchmark(lambda: [index.knn_search(q, 5) for q in queries])


def test_mm_rad_prunes_no_worse_than_random() -> None:
    workload = get_workload().prefix(M)
    evals = {
        policy: measure_queries(_index(policy), workload.queries, k=5).evaluations_per_query
        for policy in ("mM_RAD", "random")
    }
    # Tight regions must not *hurt*; allow 10% noise headroom.
    assert evals["mM_RAD"] <= evals["random"] * 1.1


def main() -> None:
    print_header("Ablation E_A5", f"M-tree split policy (m={M}, capacity={CAPACITY}, 5NN)")
    workload = get_workload().prefix(M)
    rows = []
    for policy in ("mM_RAD", "random"):
        index = _index(policy)
        result = measure_queries(index, workload.queries, k=5)
        rows.append(
            [
                policy,
                index.build_costs.distance_computations,
                f"{result.evaluations_per_query:.1f}",
                f"{result.seconds_per_query:.5f}",
            ]
        )
    print(
        format_table(
            ["split policy", "build dist. evals", "evals / query", "s / query"],
            rows,
        )
    )
    print("\nexpected: mM_RAD pays more at build time and prunes better at query time.")


if __name__ == "__main__":
    main()
