"""Shared infrastructure for the per-figure benchmark files.

Every ``bench_*.py`` file in this directory serves two audiences:

* ``pytest benchmarks/ --benchmark-only`` — pytest-benchmark timings of the
  QFD-model and QMap-model variants of each operation; the benchmark table
  itself is the figure's series (one row per model x database size).
* ``python benchmarks/bench_figN_*.py`` — a standalone report that sweeps
  the full parameter grid and prints the paper-style table, including
  speedup factors.  ``python benchmarks/run_all.py`` runs every report.

Scale note (DESIGN.md Section 5): the paper uses 1M Flickr histograms at
512-d in C++; pure Python reproduces the *shape* at reduced database
scale.  The default grid keeps the paper's exact dimensionality (8 bins
per channel -> 512-d) with databases up to ``MAX_DB`` vectors; set
``REPRO_BENCH_SCALE=small`` for a faster 64-d profile with larger m.
"""

from __future__ import annotations

import contextlib
import functools
import json
import os
from pathlib import Path


from repro.bench import append_history, format_table, history_record, speedup
from repro.datasets import Workload, histogram_workload

__all__ = [
    "BINS_PER_CHANNEL",
    "MAX_DB",
    "N_QUERIES",
    "SIZES",
    "get_workload",
    "maybe_profile",
    "maybe_serve_metrics",
    "report_sweep",
    "print_header",
    "reset_store_cache",
    "write_report",
]

_SMALL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "small"

#: 8 bins/channel -> the paper's 512-d histograms; 4 -> a fast 64-d profile.
BINS_PER_CHANNEL = 4 if _SMALL_SCALE else 8

#: Largest database in the growing sweep (the paper's 1M, scaled down).
MAX_DB = 8_000 if _SMALL_SCALE else 2_000

#: Queries averaged per measurement (the paper averages 500).
N_QUERIES = 10

#: Growing-database x-axis (Figures 2-7).
SIZES = [MAX_DB // 8, MAX_DB // 4, MAX_DB // 2, MAX_DB]


@functools.lru_cache(maxsize=2)
def get_workload(max_db: int = MAX_DB, n_queries: int = N_QUERIES) -> Workload:
    """The shared testbed workload (cached across benches in one process)."""
    return histogram_workload(
        max_db, n_queries, bins_per_channel=BINS_PER_CHANNEL, seed=2011
    )


@contextlib.contextmanager
def maybe_serve_metrics(registry=None, *, env_var: str = "REPRO_BENCH_SERVE"):
    """Serve the bench's live registry over HTTP when *env_var* is set.

    ``REPRO_BENCH_SERVE=[host:]port`` (port 0 auto-assigns) starts a
    :class:`repro.obs.TelemetryServer` for the duration of the ``with``
    block, so a long 1M-scale run can be watched from outside with
    ``curl http://host:port/metrics``.  Unset, this yields ``None`` and
    adds nothing — the default bench run stays telemetry-free.

    With *registry* ``None`` the server resolves the process's active
    registry on every request, so benches that install a fresh registry
    per phase (``use_registry``) stay scrapeable throughout.
    """
    spec = os.environ.get(env_var, "").strip()
    if not spec:
        yield None
        return
    from repro.obs import TelemetryServer, parse_serve_spec

    host, port = parse_serve_spec(spec)
    server = TelemetryServer(registry, host=host, port=port)
    server.start()
    print(
        f"serving  : {server.url} (GET /metrics /healthz /snapshot.json)",
        flush=True,
    )
    try:
        yield server
    finally:
        server.stop()


@contextlib.contextmanager
def maybe_profile(*, env_var: str = "REPRO_BENCH_PROFILE"):
    """Sample the bench under the built-in profiler when *env_var* is set.

    ``REPRO_BENCH_PROFILE=PATH`` starts a
    :class:`repro.obs.SamplingProfiler` for the duration of the ``with``
    block and writes the profile to ``PATH`` on exit — speedscope JSON
    for a ``.json`` suffix, collapsed flamegraph stacks otherwise.
    ``PATH:HZ`` (e.g. ``profile.txt:500``) overrides the default 200 Hz
    sampling rate.  Unset, this yields ``None`` and adds nothing — the
    default bench run stays profiler-free, keeping the count baselines
    bit-identical.
    """
    spec = os.environ.get(env_var, "").strip()
    if not spec:
        yield None
        return
    from repro.obs import profile_to

    path, hz = spec, 200.0
    base, sep, suffix = spec.rpartition(":")
    if sep and base:
        try:
            hz = float(suffix)
            path = base
        except ValueError:
            pass
    with profile_to(path, hz=hz) as profiler:
        yield profiler
    print(f"profile  : {path} ({profiler.sample_count} samples @ {hz:g}Hz)", flush=True)


def reset_store_cache(index) -> None:
    """Start a measured phase from a cold page cache with zeroed counters.

    Benches reuse one built index across repetitions (the
    ``functools.lru_cache`` pattern above), so without this the LRU
    cache enters each phase holding whatever the previous phase left —
    and, worse, ``clear()`` alone would keep the historical hit/fault
    counters.  ``clear(reset_stats=True)`` drops both, making each
    sweep's cache statistics self-contained.
    """
    cache = getattr(getattr(index, "store", None), "cache", None)
    if cache is not None:
        cache.clear(reset_stats=True)


def print_header(experiment: str, description: str) -> None:
    """Uniform report banner."""
    workload = get_workload()
    print()
    print("=" * 72)
    print(f"{experiment}: {description}")
    print(
        f"testbed: {workload.name}, max m={workload.size}, "
        f"{workload.queries.shape[0]} held-out queries "
        f"(paper: 1M Flickr images, 512-d, 500 queries)"
    )
    print("=" * 72)


def report_sweep(comparisons, *, metric: str, title: str) -> str:
    """Paper-style series table from a list of ModelComparison results.

    ``metric`` is ``"indexing"`` (Figures 2-4) or ``"querying"``
    (Figures 5-9).
    """
    rows = []
    for cmp in comparisons:
        if metric == "indexing":
            qfd_val = cmp.qfd_build.seconds
            qmap_val = cmp.qmap_build.seconds
            evals = cmp.qfd_build.distance_computations
        else:
            qfd_val = cmp.qfd_query.seconds_per_query
            qmap_val = cmp.qmap_query.seconds_per_query
            evals = int(cmp.qfd_query.evaluations_per_query)
        rows.append(
            [
                cmp.database_size,
                f"{qfd_val:.4f}",
                f"{qmap_val:.4f}",
                f"{speedup(qfd_val, qmap_val):.1f}x",
                evals,
            ]
        )
    return format_table(
        ["db size", "QFD model [s]", "QMap model [s]", "speedup", "dist. evals"],
        rows,
        title=title,
    )


def _headline_numbers(report: dict) -> dict:
    """Flatten the report's numeric result leaves into dotted-key metrics.

    The ``metrics`` observability block is skipped (it has its own JSON
    shape); everything numeric under ``results`` becomes one history
    metric, so the append-only log stays grep-able without knowing each
    bench's schema.
    """

    def walk(obj, prefix: str, out: dict) -> None:
        if isinstance(obj, dict):
            for key, value in obj.items():
                walk(value, f"{prefix}.{key}" if prefix else str(key), out)
        elif isinstance(obj, list):
            for pos, value in enumerate(obj):
                walk(value, f"{prefix}.{pos}", out)
        elif isinstance(obj, bool):
            return
        elif isinstance(obj, (int, float)):
            out[prefix] = obj

    metrics: dict = {}
    walk(report.get("results", []), "results", metrics)
    return metrics


def write_report(report: dict, out, *, history=None) -> Path:
    """Write a ``BENCH_*.json`` report and append the run to the history.

    Every full benchmark run leaves two artifacts: the report JSON at
    *out*, and one line in ``BENCH_history.jsonl`` next to it — git
    revision, environment fingerprint, and the report's numeric results —
    so performance regressions can be bisected against recorded runs
    (``repro bench history`` lists them).
    """
    out = Path(out)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    history_path = (
        Path(history) if history is not None else out.parent / "BENCH_history.jsonl"
    )
    record = history_record(
        str(report.get("benchmark", out.stem)),
        _headline_numbers(report),
        meta=report.get("config"),
    )
    append_history(record, history_path)
    print(f"history: appended to {history_path}")
    return out
