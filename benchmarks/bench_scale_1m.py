"""Scale bench — the paper's full 1M x 512-d testbed, out of core.

Every other bench in this directory reproduces the paper's *shape* at
reduced database scale (DESIGN.md Section 5).  This one reproduces its
*size*: one million 512-d float32 histograms — the Flickr testbed of
Section 5.1 — indexed and queried without ever materializing the heap
float64 copy (~4 GB) the in-memory path would need:

* the corpus streams straight to a memory-mapped float32 store
  (:func:`repro.datasets.stream_clustered_histograms`);
* indexes build over the raw memmap through the blocked Gram kernels
  (``store="mmap"``, :mod:`repro.kernels.blocked`);
* the QMap model streams its transform chunk-by-chunk into a second
  memmap of mapped vectors.

Measured per (model x method) cell: build seconds, build distance
evaluations, queries/second, evaluations/query, and the cell's **peak
resident set**.  Each cell runs in its own subprocess because
``ru_maxrss`` is a process-lifetime high-water mark — one process per
phase makes the peaks independent and attributable.

The full run writes ``BENCH_scale_1m.json`` at the repository root and
appends to ``BENCH_history.jsonl``; ``--smoke`` runs a 20k-row grid as a
CI liveness check (no JSON unless ``--out`` is given).

Usage::

    PYTHONPATH=src python benchmarks/bench_scale_1m.py [--smoke] [--n N]
        [--queries Q] [--k K] [--block-rows B] [--bulk-workers W]
        [--workdir DIR] [--keep-data] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_scale_1m.json"

#: The paper's dimensionality: 8 bins per RGB channel -> 512-d.
BINS_PER_CHANNEL = 8
DIM = BINS_PER_CHANNEL**3

MODELS = ("qfd", "qmap")
METHODS = ("sequential", "pivot-table", "mtree")

#: Construction arguments per method (the snapshot bench's sizing).
METHOD_KWARGS: dict[str, dict[str, int]] = {
    "pivot-table": {"n_pivots": 16},
    "mtree": {"capacity": 16, "bulk_load": True},
}

SOURCE_FILE = "source_f32.bin"
AUX_FILE = "aux.npz"


# ----------------------------------------------------------------------
# phase bodies (run inside the per-phase subprocess)
# ----------------------------------------------------------------------


def _phase_generate(args: argparse.Namespace) -> dict:
    """Stream the synthetic Flickr substitute into the memmap source file."""
    from repro.color.prototypes import lab_bin_prototypes
    from repro.core.matrices import prototype_similarity_matrix
    from repro.datasets import clustered_histograms, stream_clustered_histograms
    from repro.obs import peak_rss_bytes, peak_rss_source

    workdir = Path(args.workdir)
    start = time.perf_counter()
    store = stream_clustered_histograms(
        args.n,
        BINS_PER_CHANNEL,
        rng=np.random.default_rng(args.seed),
        path=workdir / SOURCE_FILE,
        dtype="float32",
    )
    store.flush()
    store.close()
    seconds = time.perf_counter() - start
    # Held-out queries (the paper keeps query histograms unindexed) and
    # the Hafner Lab-prototype QFD matrix, shared by every phase.
    queries = clustered_histograms(
        args.queries, BINS_PER_CHANNEL, rng=np.random.default_rng(args.seed + 1)
    )
    repair = prototype_similarity_matrix(lab_bin_prototypes(BINS_PER_CHANNEL))
    np.savez(workdir / AUX_FILE, queries=queries, matrix=repair.matrix)
    return {
        "phase": "generate",
        "rows": args.n,
        "dim": DIM,
        "seconds": seconds,
        "source_bytes": os.path.getsize(workdir / SOURCE_FILE),
        "peak_rss_bytes": peak_rss_bytes(),
        "peak_rss_source": peak_rss_source(),
    }


def _phase_cell(args: argparse.Namespace, model_name: str, method: str) -> dict:
    """Build + query one (model, method) cell over the memmap source."""
    from repro.bench import measure_queries, metrics_block
    from repro.models import QFDModel, QMapModel
    from repro.obs import (
        MetricsRegistry,
        RssSampler,
        peak_rss_bytes,
        peak_rss_source,
        use_registry,
    )

    from _common import maybe_profile, maybe_serve_metrics

    workdir = Path(args.workdir)
    source = np.memmap(
        workdir / SOURCE_FILE, dtype=np.float32, mode="r", shape=(args.n, DIM)
    )
    aux = np.load(workdir / AUX_FILE)
    matrix, queries = aux["matrix"], aux["queries"]
    model = QFDModel(matrix) if model_name == "qfd" else QMapModel(matrix)
    kwargs = dict(METHOD_KWARGS.get(method, {}))
    if method == "mtree" and args.bulk_workers:
        kwargs["bulk_workers"] = args.bulk_workers
    # The QMap model spills its *mapped* vectors to a second memmap; give
    # it a named file in the workdir so the parent's cleanup removes it.
    store_path = (
        str(workdir / f"mapped_{method}.bin") if model_name == "qmap" else None
    )
    registry = MetricsRegistry()
    # Background RSS sampling (ru_maxrss is a lifetime high-water mark;
    # the sampler attributes the peak to this cell specifically) plus an
    # optional live scrape endpoint via REPRO_BENCH_SERVE=[host:]port.
    sampler = RssSampler(
        interval=0.2,
        registry=registry,
        model=model_name,
        method=method,
        phase="cell",
    )
    with use_registry(registry), maybe_serve_metrics(registry), maybe_profile(), sampler:
        built = model.build_index(
            method,
            source,
            store="mmap",
            store_path=store_path,
            block_rows=args.block_rows,
            **kwargs,
        )
        measured = measure_queries(built, queries, mode="knn", k=args.k)
        # Nearest neighbor of each query — the parent cross-checks that
        # all three methods agree within a model (same metric, exact
        # structures, so the 1NN must be identical).
        top1 = [built.knn_search(q, 1)[0].index for q in queries]
    return {
        "sampled_peak_rss_bytes": sampler.peak_seen,
        "rss_samples": sampler.samples,
        "phase": f"{model_name}:{method}",
        "model": model_name,
        "method": method,
        "build_seconds": built.build_costs.seconds,
        "build_evaluations": built.build_costs.distance_computations,
        "transforms": built.build_costs.transforms,
        "seconds_per_query": measured.seconds_per_query,
        "queries_per_second": 1.0 / measured.seconds_per_query,
        "evaluations_per_query": measured.evaluations_per_query,
        "peak_rss_bytes": peak_rss_bytes(),
        "peak_rss_source": peak_rss_source(),
        "top1": [int(i) for i in top1],
        "metrics": metrics_block(registry),
    }


def run_phase(args: argparse.Namespace) -> None:
    """Subprocess entry: run one phase, write its JSON next to the data."""
    if args.phase == "generate":
        result = _phase_generate(args)
    else:
        model_name, method = args.phase.split(":", 1)
        result = _phase_cell(args, model_name, method)
    out = Path(args.workdir) / f"result_{args.phase.replace(':', '_')}.json"
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")


# ----------------------------------------------------------------------
# parent orchestration
# ----------------------------------------------------------------------


def _spawn(args: argparse.Namespace, phase: str) -> dict:
    """Run *phase* in a fresh interpreter and return its result dict."""
    cmd = [
        sys.executable,
        str(Path(__file__).resolve()),
        "--phase",
        phase,
        "--workdir",
        str(args.workdir),
        "--n",
        str(args.n),
        "--queries",
        str(args.queries),
        "--k",
        str(args.k),
        "--seed",
        str(args.seed),
    ]
    if args.block_rows is not None:
        cmd += ["--block-rows", str(args.block_rows)]
    if args.bulk_workers is not None:
        cmd += ["--bulk-workers", str(args.bulk_workers)]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    start = time.perf_counter()
    subprocess.run(cmd, env=env, check=True)
    elapsed = time.perf_counter() - start
    result_path = Path(args.workdir) / f"result_{phase.replace(':', '_')}.json"
    result = json.loads(result_path.read_text(encoding="utf-8"))
    result["wall_seconds"] = elapsed
    return result


def _check_answers(phases: list[dict]) -> dict:
    """Within each model the three structures must return the same 1NN."""
    checks = {}
    for model in MODELS:
        answers = {p["method"]: p["top1"] for p in phases if p["model"] == model}
        reference = answers[METHODS[0]]
        agree = all(answers[m] == reference for m in answers)
        checks[model] = {"methods_agree": agree, "top1": reference}
        if not agree:
            raise SystemExit(
                f"answer mismatch across {model} methods: {answers}"
            )
    return checks


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--n", type=int, default=1_000_000)
    parser.add_argument("--queries", type=int, default=20)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument("--block-rows", type=int, default=None)
    parser.add_argument("--bulk-workers", type=int, default=None)
    parser.add_argument(
        "--smoke", action="store_true", help="20k-row CI grid (no JSON unless --out)"
    )
    parser.add_argument("--workdir", type=Path, default=None)
    parser.add_argument(
        "--keep-data", action="store_true", help="keep the memmap files afterwards"
    )
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument("--phase", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.smoke:
        args.n = min(args.n, 20_000)
        args.queries = min(args.queries, 5)

    if args.phase is not None:
        run_phase(args)
        return

    from repro.bench import format_table, metrics_block
    from repro.kernels import DEFAULT_BLOCK_ROWS

    from _common import write_report

    owns_workdir = args.workdir is None
    if owns_workdir:
        args.workdir = Path(tempfile.mkdtemp(prefix="repro-scale-"))
    else:
        args.workdir.mkdir(parents=True, exist_ok=True)

    heap_bytes = args.n * DIM * 8  # the float64 heap copy this bench avoids
    print(
        f"scale bench: n={args.n:,} x {DIM}-d float32, "
        f"{args.queries} queries, k={args.k}, "
        f"block_rows={args.block_rows or DEFAULT_BLOCK_ROWS} "
        f"(heap float64 copy would be {heap_bytes / 2**30:.2f} GiB)"
    )
    try:
        gen = _spawn(args, "generate")
        print(
            f"generated {gen['rows']:,} rows "
            f"({gen['source_bytes'] / 2**30:.2f} GiB on disk) "
            f"in {gen['seconds']:.1f}s, "
            f"peak RSS {gen['peak_rss_bytes'] / 2**20:.0f} MiB"
        )
        phases = []
        for model in MODELS:
            for method in METHODS:
                phase = f"{model}:{method}"
                result = _spawn(args, phase)
                phases.append(result)
                print(
                    f"{phase:>20}: build {result['build_seconds']:.1f}s "
                    f"({result['build_evaluations']:,} evals), "
                    f"{result['queries_per_second']:.2f} q/s, "
                    f"{result['evaluations_per_query']:,.0f} evals/q, "
                    f"peak RSS {result['peak_rss_bytes'] / 2**20:.0f} MiB"
                )
        checks = _check_answers(phases)
    finally:
        if owns_workdir and not args.keep_data:
            import shutil

            shutil.rmtree(args.workdir, ignore_errors=True)

    print()
    print(
        format_table(
            [
                "model",
                "method",
                "build [s]",
                "build evals",
                "q/s",
                "evals/q",
                "peak RSS [MiB]",
                "RSS/heap-copy",
            ],
            [
                [
                    p["model"],
                    p["method"],
                    f"{p['build_seconds']:.1f}",
                    p["build_evaluations"],
                    f"{p['queries_per_second']:.2f}",
                    f"{p['evaluations_per_query']:.0f}",
                    f"{p['peak_rss_bytes'] / 2**20:.0f}",
                    f"{p['peak_rss_bytes'] / heap_bytes:.2f}",
                ]
                for p in phases
            ],
            title="out-of-core scale run (every cell in its own process)",
        )
    )
    max_rss = max(p["peak_rss_bytes"] for p in phases)
    print(
        f"\nmax phase peak RSS: {max_rss / 2**30:.2f} GiB "
        f"vs {heap_bytes / 2**30:.2f} GiB heap float64 copy "
        f"({max_rss / heap_bytes:.2f}x)"
    )

    report = {
        "benchmark": "scale_1m",
        "config": {
            "n": args.n,
            "dim": DIM,
            "queries": args.queries,
            "k": args.k,
            "seed": args.seed,
            "store": "mmap",
            "block_rows": args.block_rows or DEFAULT_BLOCK_ROWS,
            "bulk_workers": args.bulk_workers,
            "smoke": args.smoke,
        },
        "results": {
            "generate": gen,
            "phases": [
                {k: v for k, v in p.items() if k not in ("top1", "metrics")}
                for p in phases
            ],
            "headline": {
                "heap_float64_bytes": heap_bytes,
                "max_phase_peak_rss_bytes": max_rss,
                "rss_over_heap_copy": max_rss / heap_bytes,
            },
        },
        "checks": checks,
        "phase_metrics": {p["phase"]: p["metrics"] for p in phases},
        "metrics": metrics_block(),
    }
    if args.smoke and args.out is None:
        print("smoke run: machinery OK, no JSON written")
        return
    write_report(report, args.out if args.out is not None else DEFAULT_OUT)


if __name__ == "__main__":
    main()
