"""Table 2 — Querying time complexity comparison (empirical verification).

The paper proves the QMap model cheaper for *every* MAM at query time.
The bench measures per-query distance evaluations and transforms (1NN,
averaged over the query set), converts to arithmetic cost units and prints
the verdicts next to the Table 2 closed forms.
"""

from __future__ import annotations

import functools

import pytest

from _common import get_workload, print_header
from repro.bench import (
    format_table,
    measure_queries,
    measured_flops,
    theoretical_querying_flops,
)
from repro.models import IndexCosts, QFDModel, QMapModel

N_PIVOTS = 32
CAPACITY = 16

_METHODS = [
    ("sequential", {}),
    ("pivot-table", {"n_pivots": N_PIVOTS}),
    ("mtree", {"capacity": CAPACITY}),
]


@functools.lru_cache(maxsize=None)
def _index(method: str, model_name: str):
    workload = get_workload()
    kwargs = dict(_METHODS[[m for m, _ in _METHODS].index(method)][1])
    model = QFDModel(workload.matrix) if model_name == "qfd" else QMapModel(workload.matrix)
    return model.build_index(method, workload.database, **kwargs)


@pytest.mark.parametrize("method", [m for m, _ in _METHODS])
@pytest.mark.parametrize("model_name", ["qfd", "qmap"])
def test_table2_query_cost(benchmark, method: str, model_name: str) -> None:
    index = _index(method, model_name)
    queries = get_workload().queries
    benchmark(lambda: [index.knn_search(q, 1) for q in queries])


def test_table2_qmap_always_wins() -> None:
    workload = get_workload()
    n = workload.dim
    for method, _ in _METHODS:
        per_model = {}
        for model in ("qfd", "qmap"):
            result = measure_queries(_index(method, model), workload.queries, k=1)
            avg = IndexCosts(
                distance_computations=result.total.distance_computations // result.queries,
                transforms=result.total.transforms // result.queries,
            )
            per_model[model] = measured_flops(avg, model, n)
        assert per_model["qmap"] < per_model["qfd"], method


def main() -> None:
    print_header("Table 2", "querying time complexity comparison (1NN)")
    workload = get_workload()
    n, m = workload.dim, workload.size
    rows = []
    for method, _ in _METHODS:
        flops = {}
        for model in ("qfd", "qmap"):
            result = measure_queries(_index(method, model), workload.queries, k=1)
            evals = result.total.distance_computations // result.queries
            transforms = result.total.transforms // result.queries
            avg = IndexCosts(distance_computations=evals, transforms=transforms)
            flops[model] = measured_flops(avg, model, n)
            x = max(evals - (N_PIVOTS if method == "pivot-table" else 0), 0)
            theory = theoretical_querying_flops(
                method, model, m=m, n=n, p=N_PIVOTS, x=x
            )
            rows.append(
                [
                    f"{method} ({model.upper()})",
                    evals,
                    transforms,
                    f"{flops[model]:.2e}",
                    f"{theory:.2e}",
                ]
            )
        better = "QFD" if flops["qfd"] < flops["qmap"] else "QMap"
        rows.append([f"  -> better: {better}", "", "", "", ""])
    print(
        format_table(
            [
                "method (model)",
                "evals/query",
                "transforms/query",
                "measured flops",
                "O-form flops",
            ],
            rows,
        )
    )
    print("\npaper verdicts (Table 2): QMap better for ALL three methods.")


if __name__ == "__main__":
    main()
