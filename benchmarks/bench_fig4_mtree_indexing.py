"""Figure 4 — Indexing: M-tree (QFD model vs QMap model).

Paper result: the QMap M-tree builds up to 36x faster — O(m n^2 + m n log m)
instead of O(m n^2 log m).
"""

from __future__ import annotations

import pytest

from _common import SIZES, get_workload, print_header, report_sweep
from repro.bench import sweep_sizes
from repro.models import QFDModel, QMapModel

CAPACITY = 16


@pytest.mark.parametrize("m", SIZES)
def test_fig4_indexing_qfd(benchmark, m: int) -> None:
    workload = get_workload().prefix(m)
    model = QFDModel(workload.matrix)
    benchmark.pedantic(
        lambda: model.build_index("mtree", workload.database, capacity=CAPACITY),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("m", SIZES)
def test_fig4_indexing_qmap(benchmark, m: int) -> None:
    workload = get_workload().prefix(m)
    model = QMapModel(workload.matrix)
    benchmark.pedantic(
        lambda: model.build_index("mtree", workload.database, capacity=CAPACITY),
        rounds=1,
        iterations=1,
    )


def main() -> None:
    print_header("Figure 4", f"indexing real time, M-tree (capacity={CAPACITY})")
    comparisons = sweep_sizes(
        get_workload(), "mtree", SIZES, method_kwargs={"capacity": CAPACITY}, k=1
    )
    print(report_sweep(comparisons, metric="indexing", title=""))
    print(
        "\npaper shape check: QMap wins by roughly an order of magnitude "
        "(paper reports up to 36x; Table 1, row 3)."
    )


if __name__ == "__main__":
    main()
