"""Figure 3 — Indexing: pivot table (QFD model vs QMap model).

Paper result: the QMap model beats the QFD model by an order of magnitude —
the ``m * p`` pivot-table distances drop from O(n^2) to O(n) each, paying
only one O(n^2) transform per vector.
"""

from __future__ import annotations

import pytest

from _common import SIZES, get_workload, print_header, report_sweep
from repro.bench import sweep_sizes
from repro.models import QFDModel, QMapModel

N_PIVOTS = 32


@pytest.mark.parametrize("m", SIZES)
def test_fig3_indexing_qfd(benchmark, m: int) -> None:
    workload = get_workload().prefix(m)
    model = QFDModel(workload.matrix)
    benchmark.pedantic(
        lambda: model.build_index("pivot-table", workload.database, n_pivots=N_PIVOTS),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("m", SIZES)
def test_fig3_indexing_qmap(benchmark, m: int) -> None:
    workload = get_workload().prefix(m)
    model = QMapModel(workload.matrix)
    benchmark.pedantic(
        lambda: model.build_index("pivot-table", workload.database, n_pivots=N_PIVOTS),
        rounds=1,
        iterations=1,
    )


def main() -> None:
    print_header("Figure 3", f"indexing real time, pivot table (p={N_PIVOTS})")
    comparisons = sweep_sizes(
        get_workload(), "pivot-table", SIZES, method_kwargs={"n_pivots": N_PIVOTS}, k=1
    )
    print(report_sweep(comparisons, metric="indexing", title=""))
    print(
        "\npaper shape check: QMap wins by roughly an order of magnitude "
        "(paper reports ~10x; Table 1, row 2)."
    )


if __name__ == "__main__":
    main()
