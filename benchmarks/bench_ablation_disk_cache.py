"""Ablation E_A4 — the fixed-size disk cache effect (paper Section 5.3).

The paper observed its speedups *decreasing* on the largest databases
(227x -> 100x for the sequential file) and blamed the fixed-size disk
cache: once the database outgrows it, every scan pays physical reads.
This bench reproduces the mechanism with the paged storage substrate:
page faults per query jump from ~0 to one-per-page as the database
crosses the cache capacity.
"""

from __future__ import annotations

import functools

import pytest

from _common import get_workload, print_header, reset_store_cache
from repro.bench import format_table
from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.mam import DiskSequentialFile

#: Cache sizes in pages; the database below needs ~250 pages at 512-d.
CACHE_PAGES = [16, 64, 256, 1024]
M = 1_000
PAGE_SIZE = 16_384


@functools.lru_cache(maxsize=None)
def _index(cache_pages: int) -> DiskSequentialFile:
    workload = get_workload().prefix(M)
    counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
    return DiskSequentialFile(
        workload.database, counter, page_size=PAGE_SIZE, cache_pages=cache_pages
    )


def _pages_needed() -> int:
    index = _index(CACHE_PAGES[0])
    return (M + index.store.records_per_page - 1) // index.store.records_per_page


@pytest.mark.parametrize("cache_pages", CACHE_PAGES)
def test_disk_cache_query(benchmark, cache_pages: int) -> None:
    index = _index(cache_pages)
    queries = get_workload().queries
    benchmark(lambda: [index.knn_search(q, 1) for q in queries])


def test_faults_vanish_when_cache_fits() -> None:
    pages = _pages_needed()
    small = _index(16)
    big = _index(1024)
    assert 1024 > pages > 16, "grid must straddle the database size"
    for index in (small, big):
        index.knn_search(get_workload().queries[0], 1)  # warm
        index.store.cache.stats.reset()
        index.knn_search(get_workload().queries[1], 1)
    assert big.store.cache.stats.faults == 0
    assert small.store.cache.stats.faults >= pages - 16


def main() -> None:
    print_header("Ablation E_A4", f"fixed-size disk cache (m={M}, {_pages_needed()} pages)")
    workload = get_workload().prefix(M)
    rows = []
    for cache_pages in CACHE_PAGES:
        index = _index(cache_pages)
        # Build-time write path: the bulk load streams every page through
        # write_page, so the write counters record how much of the load
        # stayed resident (all faults once the database outgrows the cache).
        build_writes = index.store.cache.stats
        write_column = f"{build_writes.write_hits}/{build_writes.write_faults}"
        # Cold-start the cache (pages AND counters) so the sweep is
        # independent of any earlier pytest phase against the same cached
        # index, then re-warm with one scan; after a full LRU scan the
        # resident set is the same regardless of the starting state.
        reset_store_cache(index)
        index.knn_search(workload.queries[0], 1)  # warm the cache
        index.store.cache.stats.reset()
        for q in workload.queries:
            index.knn_search(q, 1)
        stats = index.store.cache.stats
        rows.append(
            [
                cache_pages,
                "yes" if cache_pages >= _pages_needed() else "no",
                stats.faults // workload.queries.shape[0],
                f"{stats.hit_rate:.3f}",
                write_column,
            ]
        )
    print(
        format_table(
            [
                "cache [pages]",
                "database fits",
                "page faults / query",
                "hit rate",
                "build write h/f",
            ],
            rows,
        )
    )

    # The hierarchical case: the paged M-tree touches only the node pages
    # its pruning visits, so cache pressure bites later but follows the
    # same fits/thrashes pattern.
    from repro.mam import PagedMTree

    print("\npaged M-tree (node pages behind the same LRU cache):")
    tree_rows = []
    for cache_pages in (2, 8, 64, 512):
        tree = PagedMTree(workload.database, euclidean, capacity=16, cache_pages=cache_pages)
        tree.knn_search(workload.queries[0], 1)
        tree.cache.stats.reset()
        for q in workload.queries:
            tree.knn_search(q, 1)
        stats = tree.cache.stats
        tree_rows.append(
            [
                cache_pages,
                tree.node_pages(),
                stats.faults // workload.queries.shape[0],
                f"{stats.hit_rate:.3f}",
            ]
        )
        tree.close()
    print(
        format_table(
            ["cache [pages]", "node pages", "page faults / query", "hit rate"],
            tree_rows,
        )
    )
    print(
        "\npaper shape check (Section 5.3): once the database outgrows the "
        "cache, every scan faults on every page — the relative slowdown "
        "seen on the 1M-image database.  The M-tree's pruned access "
        "pattern delays but does not escape the effect."
    )


if __name__ == "__main__":
    main()
