"""Ablation E_A9 — approximate kNN: epsilon vs cost vs recall (M-tree).

The paper's reference [27] (Skopal's unified framework) motivates trading
exactness for speed in metric search.  The epsilon-relaxed best-first kNN
of :class:`~repro.mam.mtree.MTree` guarantees reported distances within
``(1 + epsilon)`` of the truth; this bench sweeps epsilon and reports the
distance-evaluation savings against the measured recall — in the QMap
model, so the savings stack on top of the paper's O(n) evaluations.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from _common import get_workload, print_header
from repro.bench import format_table, measure_queries
from repro.evaluation import compare_results, mean_quality
from repro.models import QMapModel

M = 2_000
EPSILONS = [0.0, 0.1, 0.25, 0.5, 1.0, 2.0]


@functools.lru_cache(maxsize=None)
def _index(epsilon: float):
    workload = get_workload().prefix(M)
    return QMapModel(workload.matrix).build_index(
        "mtree",
        workload.database,
        capacity=16,
        epsilon=epsilon,
        rng=np.random.default_rng(3),
    )


@pytest.mark.parametrize("epsilon", [0.0, 0.5, 2.0])
def test_approximate_knn(benchmark, epsilon: float) -> None:
    index = _index(epsilon)
    queries = get_workload().queries
    benchmark(lambda: [index.knn_search(q, 10) for q in queries])


def test_guarantee_and_savings() -> None:
    workload = get_workload().prefix(M)
    exact = _index(0.0)
    relaxed = _index(1.0)
    exact_cost = measure_queries(exact, workload.queries, k=10).evaluations_per_query
    relaxed_cost = measure_queries(relaxed, workload.queries, k=10).evaluations_per_query
    assert relaxed_cost < exact_cost
    for q in workload.queries:
        truth = exact.knn_search(q, 10)
        approx = relaxed.knn_search(q, 10)
        assert approx[-1].distance <= truth[-1].distance * 2.0 + 1e-12


def main() -> None:
    print_header("Ablation E_A9", f"approximate M-tree kNN (m={M}, k=10, QMap model)")
    workload = get_workload().prefix(M)
    exact_answers = [_index(0.0).knn_search(q, 10) for q in workload.queries]
    rows = []
    for epsilon in EPSILONS:
        index = _index(epsilon)
        result = measure_queries(index, workload.queries, k=10)
        qualities = [
            compare_results(truth, index.knn_search(q, 10))
            for q, truth in zip(workload.queries, exact_answers)
        ]
        quality = mean_quality(qualities)
        rows.append(
            [
                epsilon,
                f"{result.evaluations_per_query:.1f}",
                f"{quality.recall:.3f}",
                f"{quality.relative_error:.4f}",
                f"{result.seconds_per_query * 1000:.2f}",
            ]
        )
    print(
        format_table(
            ["epsilon", "evals / query", "recall@10", "rel. kth error", "ms / query"],
            rows,
        )
    )
    print(
        "\nexpected: evaluations fall and recall degrades gracefully as "
        "epsilon grows; the relative kth error never exceeds epsilon."
    )


if __name__ == "__main__":
    main()
