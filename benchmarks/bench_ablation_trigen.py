"""Ablation E_A10 — TriGen-style convex modifiers (paper reference [27]).

A convex modifier ``d -> d^w`` spreads the distance distribution (lower
intrinsic dimensionality), so MAMs prune harder — at the price of a
measurable triangle-violation rate that turns exact search approximate.
This bench sweeps the exponent on the QMap-transformed testbed, reporting
intrinsic dimensionality, violation rate, per-query distance evaluations
(M-tree, 10NN) and the measured recall against exact answers.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from _common import get_workload, print_header
from repro.analysis import intrinsic_dimensionality, sample_distances
from repro.bench import format_table
from repro.core import QMap
from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.evaluation import compare_results, mean_quality
from repro.mam import MTree, SequentialFile
from repro.modifiers import ModifiedDistance, PowerModifier, triangle_violation_rate

M = 1_500
EXPONENTS = [1.0, 1.5, 2.0, 3.0]


@functools.lru_cache(maxsize=1)
def _mapped():
    workload = get_workload().prefix(M)
    qmap = QMap(workload.matrix)
    return qmap.transform_batch(workload.database), qmap.transform_batch(workload.queries)


@functools.lru_cache(maxsize=None)
def _tree(exponent: float):
    data, _ = _mapped()
    counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
    dist = ModifiedDistance(counter, PowerModifier(exponent))
    tree = MTree(data, dist, capacity=16, rng=np.random.default_rng(5))
    return tree, counter


@pytest.mark.parametrize("exponent", EXPONENTS)
def test_modified_knn(benchmark, exponent: float) -> None:
    tree, _ = _tree(exponent)
    _, queries = _mapped()
    benchmark(lambda: [tree.knn_search(q, 10) for q in queries])


def test_convex_modifier_prunes_harder() -> None:
    _, queries = _mapped()
    evals = {}
    for exponent in (1.0, 2.0):
        tree, counter = _tree(exponent)
        counter.reset()
        for q in queries:
            tree.knn_search(q, 10)
        evals[exponent] = counter.count
    assert evals[2.0] < evals[1.0]


def main() -> None:
    print_header("Ablation E_A10", f"TriGen-style convex modifiers (m={M}, M-tree, 10NN)")
    data, queries = _mapped()
    exact_scan = SequentialFile(data, euclidean)
    exact_answers = [exact_scan.knn_search(q, 10) for q in queries]
    rows = []
    for exponent in EXPONENTS:
        dist = ModifiedDistance(euclidean, PowerModifier(exponent))
        rho = intrinsic_dimensionality(
            sample_distances(data[:800], dist, n_pairs=1_500, rng=np.random.default_rng(1))
        )
        violation = triangle_violation_rate(
            data[:400], dist, n_triples=800, rng=np.random.default_rng(2)
        )
        tree, counter = _tree(exponent)
        counter.reset()
        answers = [tree.knn_search(q, 10) for q in queries]
        evals = counter.count / len(queries)
        quality = mean_quality(
            [compare_results(t, a) for t, a in zip(exact_answers, answers)]
        )
        rows.append(
            [
                exponent,
                f"{rho:.2f}",
                f"{violation:.4f}",
                f"{evals:.1f}",
                f"{quality.recall:.3f}",
            ]
        )
    print(
        format_table(
            ["exponent w", "intrinsic dim", "T-violation rate", "evals / query", "recall@10"],
            rows,
        )
    )
    print(
        "\nexpected: larger exponents lower the intrinsic dimensionality "
        "and the evaluation count; the violation rate (and thus the recall "
        "loss) is the price — exponent 1.0 is the exact baseline."
    )


if __name__ == "__main__":
    main()
