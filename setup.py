"""Legacy setup shim.

The execution environment has no ``wheel`` package, so editable installs
must go through ``setup.py develop`` (``pip install -e . --no-use-pep517
--no-build-isolation``).  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
